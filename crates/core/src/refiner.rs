//! The iterative domination-count refiner (Algorithm 1 of the paper).
//!
//! # Incremental snapshots
//!
//! [`Refiner::snapshot`] evaluates one UGF per partition pair `(B', R')`,
//! each multiplying one probability-bound factor per influence object.
//! Recomputing every factor from scratch each iteration costs
//! `O(|B'|·|R'| · Σᵢ |Aᵢ'|)` spatial tests per snapshot; most of that work
//! repeats verbatim, so the refiner caches and dirty-tracks it:
//!
//! * **Per-partition factor cache** — each `(pair, influence)` slot (a
//!   `FactorCache`, row-major by pair, `pair_idx = bp_idx · |R'| +
//!   rp_idx`) splits the influence object's partitions into *settled*
//!   mass — partitions whose spatial decision was **float-robust**
//!   ([`udb_domination::SpatialDecision::robust`]) — and a small `open`
//!   list of partitions straddling the decision boundary. The decision
//!   sums are monotone under shrinking any of the three regions, so a
//!   robust decision is final: settled mass is *never* reclassified, no
//!   matter how `A`, `B` or `R` refine. Only the open list (the geometric
//!   boundary, asymptotically a vanishing fraction of the partitions) is
//!   ever tested again.
//! * **Influence lineage** — expanding an influence object's
//!   decomposition records its partition lineage
//!   ([`Decomposition::expand_with_map`]); the next snapshot replaces each
//!   open partition by its children and classifies exactly those —
//!   children of settled partitions are never touched.
//! * **Pair remapping** — expanding `B` or `R` changes the pair geometry,
//!   so the next snapshot maps every new pair to its ancestor pair
//!   (lineage again, composed across multiple [`Refiner::step`]s), clones
//!   the ancestor's slot — settled mass stays settled by monotonicity —
//!   and re-evaluates only the open partitions against the shrunken pair
//!   regions.
//! * **Clean slots are free** — when neither the pair nor the influence
//!   object changed, the slot's cached bounds are reused without a single
//!   spatial test.
//!
//! Aggregation reuses a single flat-arena [`Ugf`] (plus scratch) across
//! all pairs via [`Ugf::reset`], so the steady-state snapshot performs no
//! heap allocation in the pair loop.
//!
//! # The open-list arena
//!
//! The open lists themselves live in one contiguous, generational arena
//! (mirroring the flat UGF arena) instead of one `Vec` per slot: each
//! `FactorCache` stores only a `(start, len)` range into the refiner's
//! current arena generation. Invariants:
//!
//! * **One generation per rebuilding snapshot** — a snapshot that touches
//!   any slot (`Full`/`Remapped`/`InPlace` refresh) streams *every*
//!   surviving open list into a fresh generation (double-buffered scratch,
//!   swapped at the end, capacity reused), in pair order, so slot ranges
//!   are disjoint, ordered and the buffer is perfectly compact. Untouched
//!   slots of a dirty snapshot copy their list verbatim (a contiguous
//!   `u32` memcpy); a fully *clean* snapshot (nothing expanded since the
//!   last one) skips the rebuild entirely and aggregates straight from
//!   the cached bounds.
//! * **Ranges never dangle** — a slot with `open_len > 0` always belongs
//!   to a positive-weight pair and is rewritten by every rebuilding
//!   snapshot; zero-weight pairs (and their descendants, whose mass stays
//!   zero under splitting) only ever hold empty ranges.
//! * **Retirement is free** — settling a slot (or retiring a whole
//!   candidate in the lock-step drivers below) just zeroes its range /
//!   drops the refiner; the next generation simply never copies the dead
//!   entries, so the arena self-compacts without a free list.
//!
//! Arena indices are `u32` (a generation holds < 2³² open references —
//! enforced by a debug assertion); slots shrink from ~72 to 56 bytes,
//! which is most of the depth-4 locality win.
//!
//! # Parallel snapshots
//!
//! With [`IdcaConfig::snapshot_threads`] > 1 the pair loop fans out over
//! the engine's persistent [`crate::parallel::WorkerPool`] (engines
//! inject their pool via [`Refiner::with_pool`]; a stand-alone refiner
//! lazily creates its own): pairs are split into contiguous chunks, each
//! job owns its chunk's cache slots (`split_at_mut`), accumulates a
//! private [`CountDistributionBounds`] + CDF pair and writes its chunk's
//! open lists into a private arena segment; partials merge in chunk order
//! after the scope ends (segments are concatenated and slot ranges
//! rebased), so results are deterministic for a fixed thread count.
//! Across different thread counts they may differ by float reassociation
//! only (≲ 1e-13).
//!
//! [`Refiner::snapshot_from_scratch`] keeps the cache-free evaluation
//! path: tests assert it agrees with the incremental snapshot at every
//! iteration, and the `idca` criterion bench measures the speedup.
//!
//! # Early-exit candidate refinement
//!
//! Query-level drivers ([`refine_lockstep`], [`refine_top_m`]) run one
//! refiner per candidate in lock-step rounds, retiring candidates
//! mid-loop the moment their query outcome is decided (via
//! [`DomCountSnapshot::decided`] and the [`RefineGoal`] context) — the
//! candidate set shrinks *during* refinement, and retired refiners free
//! their factor cache and arena immediately. [`crate::Engine`]
//! drives its threshold and top-`m` queries through these paths.
//!
//! Candidates refine independently, so each round is batch-parallel:
//! with [`IdcaConfig::candidate_threads`] > 1 the per-candidate
//! `step()`/`snapshot()` calls of a round fan out over the shared
//! [`crate::parallel::WorkerPool`]
//! ([`crate::parallel::PoolHandle::fan_each`]), and the retirement /
//! cross-candidate decisions merge on the calling thread after the round
//! — bit-identical to the sequential drivers at every lane count.
//! Candidate jobs may nest pair-loop scopes of the same pool
//! ([`IdcaConfig::snapshot_threads`]); caller participation makes the
//! candidates × pairs nesting deadlock-free.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use udb_domination::{pdom_bounds_vs_fixed, PDomBounds, PairClassifier};
use udb_genfunc::{CountDistributionBounds, MinMaxCdf, ProbAlgebra, Ugf};
use udb_object::{Database, Decomposition, ObjectId, Partition, Pdf, UncertainObject};

use crate::batch::{DecompCache, ObjDecomp, SharedRefineCtx};
use crate::config::{IdcaConfig, ObjRef, Predicate, RefineGoal};
use crate::parallel::PoolHandle;
use crate::queries::ThresholdResult;

/// The decomposition state of one refined region: either privately owned
/// (the classic per-refiner kd-tree) or a view into a batch-shared
/// [`crate::batch::DecompCache`] entry, which memoizes each expansion level of an
/// object's decomposition so every refiner touching the same object —
/// across all queries of a batch — computes each split exactly once.
///
/// Expansion is deterministic given the PDF and split strategy, so a
/// cached level is bit-identical to what an owned decomposition would
/// produce; only the work is shared, never the results.
enum DecSource {
    /// Privately owned (the non-batched paths).
    Own(Decomposition),
    /// A cursor into a shared cache entry: `applied` counts the
    /// expansion levels this refiner has consumed so far. The handle
    /// resolves **lazily** — see [`SharedHandle`].
    Shared {
        handle: SharedHandle,
        applied: usize,
    },
}

/// How a shared [`DecSource`] finds its cache entry. Most early-exit
/// refiners decide at iteration 0 and never expand anything; a deferred
/// handle costs them *nothing* (no map lock, no [`ObjDecomp`]
/// allocation), where eagerly registering every region of every refiner
/// in the [`crate::batch::DecompCache`] measurably taxed the
/// many-refiner queries (RkNN builds one refiner per database object).
/// The entry is looked up — and created on first touch — only when an
/// expansion is actually requested.
enum SharedHandle {
    /// Already looked up (the per-query external decomposition, or a
    /// deferred handle after its first expansion).
    Resolved(Arc<Mutex<ObjDecomp>>),
    /// Not looked up yet: the cache and the id to ask it for.
    Deferred(Arc<DecompCache>, ObjectId),
}

impl SharedHandle {
    /// The cache entry, looked up (and created) on first use.
    fn resolve(&mut self, pdf: &Pdf) -> &Arc<Mutex<ObjDecomp>> {
        if let SharedHandle::Deferred(cache, id) = self {
            *self = SharedHandle::Resolved(cache.entry(*id, pdf));
        }
        match self {
            SharedHandle::Resolved(entry) => entry,
            SharedHandle::Deferred(..) => unreachable!("resolved above"),
        }
    }
}

impl DecSource {
    /// One expansion level: the new partition list and the lineage map
    /// (`map[new_idx] = old_idx`), or `None` when nothing can split
    /// further. Owned sources delegate to
    /// [`Decomposition::expand_with_map`]; shared sources replay (or
    /// extend) the cache entry.
    fn expand(&mut self, pdf: &Pdf) -> Option<(Vec<Partition>, Vec<u32>)> {
        match self {
            DecSource::Own(dec) => dec.expand_with_map(pdf).map(|map| (dec.partitions(), map)),
            DecSource::Shared { handle, applied } => {
                let entry = handle.resolve(pdf);
                let mut cached = entry.lock().unwrap_or_else(|p| p.into_inner());
                let out = cached.expand_from(*applied, pdf);
                if out.is_some() {
                    *applied += 1;
                }
                out
            }
        }
    }
}

/// The reusable heap state of a retired [`Refiner`]: the UGF arena, the
/// open-list arena generations and the factor-cache slot vector. Contents
/// are meaningless across refiners — only the allocations are recycled
/// (capacity reuse cannot change results).
pub struct RefinerScratch {
    ugf: Ugf,
    open_arena: Vec<u32>,
    open_scratch: Vec<u32>,
    cache: Vec<FactorCache>,
}

/// A shared pool of reusable scratch buffers: refiners built through a
/// [`SharedRefineCtx`] pop a [`RefinerScratch`] at construction and
/// return their buffers on drop, so a batch allocates each arena once
/// per *concurrent* refiner instead of once per refiner. The pool also
/// recycles the engines' subtree-filter traversal scratch
/// ([`udb_index::ClassifyScratch`], via an internal check-out helper):
/// each concurrent filter pass checks one out and returns it, so batch
/// lanes building refiners in parallel never serialize on a single
/// shared scratch — the lock is held only for the pop/push, never
/// across a traversal.
pub struct ScratchPool {
    pool: Mutex<Vec<RefinerScratch>>,
    classify: Mutex<Vec<udb_index::ClassifyScratch<ObjectId>>>,
}

/// Retained scratches are capped so a huge candidate wave cannot pin its
/// peak memory forever; excess buffers just drop.
const SCRATCH_POOL_CAP: usize = 64;

impl std::fmt::Debug for ScratchPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let pooled = self.pool.lock().map(|p| p.len()).unwrap_or(0);
        let classify = self.classify.lock().map(|p| p.len()).unwrap_or(0);
        f.debug_struct("ScratchPool")
            .field("refiner_buffers", &pooled)
            .field("classify_buffers", &classify)
            .finish()
    }
}

impl Default for ScratchPool {
    fn default() -> Self {
        ScratchPool {
            pool: Mutex::new(Vec::new()),
            classify: Mutex::new(Vec::new()),
        }
    }
}

impl ScratchPool {
    /// An empty pool.
    pub fn new() -> Self {
        ScratchPool::default()
    }

    fn pop(&self) -> Option<RefinerScratch> {
        self.pool.lock().unwrap_or_else(|p| p.into_inner()).pop()
    }

    fn put(&self, mut scratch: RefinerScratch) {
        scratch.open_arena.clear();
        scratch.open_scratch.clear();
        scratch.cache.clear();
        let mut pool = self.pool.lock().unwrap_or_else(|p| p.into_inner());
        if pool.len() < SCRATCH_POOL_CAP {
            pool.push(scratch);
        }
    }

    /// Runs `f` with a pooled subtree-filter traversal scratch, checked
    /// out for the duration of the call (concurrent callers each get
    /// their own; buffers are recycled afterwards).
    pub(crate) fn with_classify<R>(
        &self,
        f: impl FnOnce(&mut udb_index::ClassifyScratch<ObjectId>) -> R,
    ) -> R {
        let mut scratch = self
            .classify
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .pop()
            .unwrap_or_default();
        let out = f(&mut scratch);
        let mut pool = self.classify.lock().unwrap_or_else(|p| p.into_inner());
        if pool.len() < SCRATCH_POOL_CAP {
            pool.push(scratch);
        }
        out
    }
}

/// One influence object: its id, existence probability and current
/// decomposition state.
struct Influence {
    id: ObjectId,
    existence: f64,
    /// The whole object's uncertainty-region MBR (for the object-level
    /// pre-test of remapped slots).
    mbr: udb_geometry::Rect,
    dec: DecSource,
    parts: Vec<Partition>,
    /// The partition MBRs flattened into one contiguous interval buffer
    /// (partition `p` occupies `p·dims .. (p+1)·dims`) with the matching
    /// masses — the hot-loop view of `parts`, refreshed on every
    /// expansion, so classification streams without a heap indirection
    /// per partition.
    flat_mbrs: Vec<udb_geometry::Interval>,
    masses: Vec<f64>,
    /// Partition lineage since the last snapshot (`map[new_idx] =
    /// old_idx`, composed across steps); `None` when unchanged.
    lineage: Option<Vec<u32>>,
}

impl Influence {
    fn new(id: ObjectId, a: &UncertainObject, cfg: &IdcaConfig) -> Self {
        let dec = Decomposition::with_strategy(a.pdf(), cfg.split_strategy);
        let parts = dec.partitions();
        let mut inf = Influence {
            id,
            existence: a.existence(),
            mbr: a.mbr().clone(),
            dec: DecSource::Own(dec),
            parts,
            flat_mbrs: Vec::new(),
            masses: Vec::new(),
            lineage: None,
        };
        inf.refresh_flat();
        inf
    }

    /// Rebuilds the flat MBR/mass buffers from `parts`.
    fn refresh_flat(&mut self) {
        self.flat_mbrs.clear();
        self.masses.clear();
        for p in &self.parts {
            self.flat_mbrs.extend_from_slice(p.mbr.intervals());
            self.masses.push(p.mass);
        }
    }
}

/// Two-tier refinement counters (shared, lock-free): how many rounds the
/// O(n) min/max prefilter decided on its own (`tier1_skipped`) versus how
/// many fell through to an exact UGF snapshot (`tier2_exact`). Engines
/// attach one sink ([`Refiner::with_stats`]) to every refiner they build,
/// so the tier-1 hit rate of a whole query (or workload) is observable —
/// `profile_knn` prints it per query type.
#[derive(Debug, Default)]
pub struct RefineStats {
    tier1_skipped: AtomicU64,
    tier2_exact: AtomicU64,
}

impl RefineStats {
    /// Rounds (plus top-`m` candidate drops) the cheap tier decided
    /// without any exact UGF work.
    pub fn tier1_skipped(&self) -> u64 {
        self.tier1_skipped.load(Ordering::Relaxed)
    }

    /// Rounds that computed an exact UGF snapshot.
    pub fn tier2_exact(&self) -> u64 {
        self.tier2_exact.load(Ordering::Relaxed)
    }

    /// Total refinement rounds observed.
    pub fn rounds(&self) -> u64 {
        self.tier1_skipped() + self.tier2_exact()
    }

    /// Fraction of rounds decided by the cheap tier (0 when idle).
    pub fn tier1_rate(&self) -> f64 {
        let rounds = self.rounds();
        if rounds == 0 {
            0.0
        } else {
            self.tier1_skipped() as f64 / rounds as f64
        }
    }

    /// Resets both counters (between profile phases).
    pub fn reset(&self) {
        self.tier1_skipped.store(0, Ordering::Relaxed);
        self.tier2_exact.store(0, Ordering::Relaxed);
    }
}

/// The bounds state after an IDCA iteration.
#[derive(Debug, Clone)]
pub struct DomCountSnapshot {
    /// Bounds on `P(DomCount = k)` over the *total* count (already shifted
    /// by the complete-domination count). Under a truncating predicate the
    /// vector covers only the counts the predicate needs.
    pub bounds: CountDistributionBounds,
    /// Bounds on `P(DomCount < k)` when the predicate fixes a `k`.
    pub predicate_cdf: Option<(f64, f64)>,
    /// Number of objects that certainly dominate the target.
    pub complete_count: usize,
    /// Number of influence objects.
    pub influence_count: usize,
    /// Iterations of refinement performed (0 = filter only).
    pub iteration: usize,
}

impl DomCountSnapshot {
    /// The paper's accumulated uncertainty
    /// `Σ_k (DomCountUB_k − DomCountLB_k)`.
    pub fn uncertainty(&self) -> f64 {
        self.bounds.uncertainty()
    }

    /// For a threshold predicate: `Some(true)` once
    /// `P(DomCount < k) > τ` is certain, `Some(false)` once it is certainly
    /// `≤ τ`, `None` while undecided.
    pub fn decided(&self, tau: f64) -> Option<bool> {
        let (lo, hi) = self.predicate_cdf?;
        if lo > tau {
            Some(true)
        } else if hi <= tau {
            Some(false)
        } else {
            None
        }
    }
}

/// The object storage a [`Refiner`] resolves ids against: one database,
/// or the databases of N engine shards under the order-preserving
/// interleaved global-id scheme of [`crate::ShardedEngine`]
/// (`global = local · n + shard`, so `shard = global mod n` and
/// `local = global div n`). Every id-to-object read of refinement goes
/// through [`DbView::get`], which makes the refiner storage-layout
/// agnostic: the same (global) influence ids resolve to the same
/// objects — and UGF factors multiply in the same sorted-id order — no
/// matter how the objects are physically partitioned, so sharded
/// refinement is bit-identical to single-engine refinement by
/// construction.
#[derive(Clone, Copy)]
pub enum DbView<'a> {
    /// One database; ids are its own (the non-sharded entry points).
    Single(&'a Database),
    /// Sharded storage: global id `g` lives in `dbs[g mod n]` at local
    /// slot `g div n`, where `n = dbs.len()`.
    Sharded(&'a [&'a Database]),
}

impl<'a> DbView<'a> {
    /// The live object behind a (global) id.
    ///
    /// # Panics
    /// Panics if the id is dead or out of range.
    pub fn get(&self, id: ObjectId) -> &'a UncertainObject {
        match *self {
            DbView::Single(db) => db.get(id),
            DbView::Sharded(dbs) => {
                let n = dbs.len() as u32;
                dbs[(id.0 % n) as usize].get(ObjectId(id.0 / n))
            }
        }
    }

    /// Resolves an [`ObjRef`] against this view.
    pub fn resolve(&self, r: ObjRef<'a>) -> &'a UncertainObject {
        match r {
            ObjRef::Db(id) => self.get(id),
            ObjRef::External(obj) => obj,
        }
    }
}

/// Iteratively refines the domination count of a target object w.r.t. a
/// reference object over a database (Algorithm 1).
///
/// ```
/// use udb_core::{IdcaConfig, ObjRef, Predicate, Refiner};
/// use udb_geometry::Point;
/// use udb_object::{Database, ObjectId, UncertainObject};
///
/// // reference at 0, a certain dominator at 1, the target at 2
/// let db = Database::from_objects(vec![
///     UncertainObject::certain(Point::from([1.0, 0.0])),
///     UncertainObject::certain(Point::from([2.0, 0.0])),
/// ]);
/// let q = UncertainObject::certain(Point::from([0.0, 0.0]));
/// let mut refiner = Refiner::new(
///     &db,
///     ObjRef::Db(ObjectId(1)),
///     ObjRef::External(&q),
///     IdcaConfig::default(),
///     Predicate::FullPdf,
/// );
/// let snapshot = refiner.run();
/// // exactly one object dominates the target in every world
/// assert_eq!(snapshot.bounds.lower(1), 1.0);
/// ```
pub struct Refiner<'a> {
    db: DbView<'a>,
    cfg: IdcaConfig,
    predicate: Predicate,
    target: &'a UncertainObject,
    reference: &'a UncertainObject,
    /// Database ids of the target/reference (when they live in the
    /// database): the keys under which their decompositions can join a
    /// batch-shared [`crate::batch::DecompCache`].
    target_id: Option<ObjectId>,
    reference_id: Option<ObjectId>,
    complete_count: usize,
    influence: Vec<Influence>,
    b_dec: DecSource,
    b_parts: Vec<Partition>,
    r_dec: DecSource,
    r_parts: Vec<Partition>,
    iteration: usize,
    /// Partition lineage of `B` / `R` expansions since the cache was last
    /// refreshed (`None` = unchanged): `map[new_idx] = cached_idx`,
    /// composed across multiple [`Refiner::step`]s.
    b_map: Option<Vec<u32>>,
    r_map: Option<Vec<u32>>,
    /// Per-partition factor cache, `n_pairs × n_inf` row-major by pair
    /// (`pair_idx = bp_idx · |R'| + rp_idx`). Bounds are stored already
    /// scaled by the influence object's existence probability.
    cache: Vec<FactorCache>,
    /// `(|B'|, |R'|)` the cache was filled against.
    cache_dims: (usize, usize),
    cache_valid: bool,
    /// Current generation of the open-list arena: every slot's open
    /// partitions, contiguous in pair order (see the module docs for the
    /// invariants).
    open_arena: Vec<u32>,
    /// The next generation under construction (double buffer, swapped
    /// after each rebuilding snapshot; capacity is reused).
    open_scratch: Vec<u32>,
    /// The reusable UGF arena for sequential aggregation.
    ugf: Ugf,
    /// Shared worker pool for parallel snapshots (engine-injected via
    /// [`Refiner::with_pool`]; otherwise created lazily and private).
    pool: PoolHandle,
    /// When set (batched execution), the refiner's arenas return here on
    /// drop so the next refiner of the batch reuses the allocations.
    scratch_pool: Option<Arc<ScratchPool>>,
    /// Two-tier round counters (engine-attached; `None` = not measured).
    stats: Option<Arc<RefineStats>>,
}

impl Drop for Refiner<'_> {
    fn drop(&mut self) {
        if let Some(pool) = self.scratch_pool.take() {
            pool.put(RefinerScratch {
                ugf: std::mem::replace(&mut self.ugf, Ugf::new(None)),
                open_arena: std::mem::take(&mut self.open_arena),
                open_scratch: std::mem::take(&mut self.open_scratch),
                cache: std::mem::take(&mut self.cache),
            });
        }
    }
}

/// One `(pair, influence)` slot of the snapshot cache: the factor's
/// probability bounds together with the partition bookkeeping that makes
/// refreshing it incremental. The open list itself lives in the
/// refiner's flat arena; the slot stores only its range (see the module
/// docs for the arena invariants).
#[derive(Debug, Clone, Copy)]
struct FactorCache {
    /// Mass of partitions robustly classified as dominating — final.
    settled_lb: f64,
    /// Mass of partitions robustly classified as never-dominating — final.
    settled_never: f64,
    /// Total probability mass of the open partitions (so an object-level
    /// decision can settle all of it without streaming the partitions).
    open_mass: f64,
    /// Start of this slot's open-partition indices in the current arena
    /// generation.
    open_start: u32,
    /// Number of open-partition indices (0 = finally classified).
    open_len: u32,
    /// The factor bounds as of the last refresh, scaled by the influence
    /// object's existence probability.
    bounds: PDomBounds,
}

impl FactorCache {
    /// An empty slot: nothing settled, nothing open, vacuous bounds. The
    /// first refresh seeds it from the full partition list.
    fn empty() -> Self {
        FactorCache {
            settled_lb: 0.0,
            settled_never: 0.0,
            open_mass: 0.0,
            open_start: 0,
            open_len: 0,
            bounds: PDomBounds::UNKNOWN,
        }
    }

    /// Copies the final (settled/bounds) state of an ancestor slot — the
    /// open range is intentionally *not* carried; the refresh pass
    /// streams the ancestor's list from the old arena generation.
    fn carried_from(ancestor: &FactorCache) -> Self {
        FactorCache {
            settled_lb: ancestor.settled_lb,
            settled_never: ancestor.settled_never,
            open_mass: ancestor.open_mass,
            open_start: 0,
            open_len: 0,
            bounds: ancestor.bounds,
        }
    }

    /// This slot's open range in its arena generation.
    fn open_range(&self) -> std::ops::Range<usize> {
        self.open_start as usize..(self.open_start + self.open_len) as usize
    }

    /// Classifies the candidate partitions streamed by `candidates`
    /// against the pair behind `pc` in one pass: robust decisions settle
    /// permanently, everything else is appended to `arena` (the new
    /// generation under construction, which becomes this slot's open
    /// range), and the factor bounds are recomputed. `pc` carries the
    /// pair's precomputed criterion terms, so only the partition-side
    /// work runs per candidate.
    fn classify_into(
        &mut self,
        candidates: impl Iterator<Item = u32>,
        inf: &Influence,
        pc: &PairClassifier,
        arena: &mut Vec<u32>,
    ) {
        let start = arena.len();
        let dims = inf.mbr.dims();
        let mut open_lb = 0.0;
        let mut open_never = 0.0;
        let mut open_mass = 0.0;
        for p in candidates {
            let mass = inf.masses[p as usize];
            let mbr = &inf.flat_mbrs[p as usize * dims..(p as usize + 1) * dims];
            let decision = pc.classify_dims(mbr);
            match (decision.decision, decision.robust) {
                (Some(true), true) => self.settled_lb += mass,
                (Some(false), true) => self.settled_never += mass,
                (Some(true), false) => {
                    open_lb += mass;
                    open_mass += mass;
                    arena.push(p);
                }
                (Some(false), false) => {
                    open_never += mass;
                    open_mass += mass;
                    arena.push(p);
                }
                (None, _) => {
                    open_mass += mass;
                    arena.push(p);
                }
            }
        }
        // hard assert (once per slot, not per element): a silently
        // wrapped u32 range would alias another slot's open list
        assert!(arena.len() <= u32::MAX as usize, "open-list arena overflow");
        self.open_start = start as u32;
        self.open_len = (arena.len() - start) as u32;
        self.open_mass = open_mass;
        let lower = (self.settled_lb + open_lb).min(1.0);
        let upper = (1.0 - self.settled_never - open_never).max(0.0);
        self.bounds = PDomBounds { lower, upper }.scale_by_existence(inf.existence);
    }

    /// Settles all remaining open mass in one direction (after a robust
    /// object-level decision: every open partition decides identically).
    /// The slot's range is zeroed; the dead entries simply never reach
    /// the next arena generation.
    fn settle_open(&mut self, dominates: bool, existence: f64) {
        if dominates {
            self.settled_lb += self.open_mass;
        } else {
            self.settled_never += self.open_mass;
        }
        self.open_mass = 0.0;
        self.open_len = 0;
        let lower = self.settled_lb.min(1.0);
        let upper = (1.0 - self.settled_never).max(0.0);
        self.bounds = PDomBounds { lower, upper }.scale_by_existence(existence);
    }
}

/// How the next snapshot must treat each cache slot.
#[derive(Clone, Copy, PartialEq)]
enum RefreshMode {
    /// Rebuild every slot from nothing (first snapshot).
    Full,
    /// `B`/`R` expanded: every slot was cloned from its ancestor pair and
    /// must re-evaluate its open partitions against the new pair regions.
    Remapped,
    /// Pairs unchanged: slots of expanded influence objects reclassify
    /// their open children, the rest carry their open list verbatim into
    /// the new arena generation.
    InPlace,
    /// Nothing expanded since the last snapshot: aggregate straight from
    /// the cached bounds; the arena generation is left untouched.
    Clean,
}

impl<'a> Refiner<'a> {
    /// Runs the complete-domination filter (lines 3–10 of Algorithm 1) and
    /// prepares the refinement state.
    pub fn new(
        db: &'a Database,
        target: ObjRef<'a>,
        reference: ObjRef<'a>,
        cfg: IdcaConfig,
        predicate: Predicate,
    ) -> Self {
        let target_obj = target.resolve(db);
        let reference_obj = reference.resolve(db);
        let excluded = [target.id(), reference.id()];

        // the (B, R) halves of the criterion are fixed for the whole
        // filter scan: precompute them once and stream only the A-side
        // terms per object. `classify` makes the same decisions as the
        // separate `never_dominates` / `dominates` tests (they are
        // mutually exclusive; ties are weak non-domination because Dom
        // is strict), at roughly half the per-object work.
        let pc = PairClassifier::new(
            target_obj.mbr(),
            reference_obj.mbr(),
            cfg.criterion,
            cfg.norm,
        );
        let mut complete_count = 0usize;
        let mut influence = Vec::new();
        for (id, a) in db.iter() {
            if excluded.contains(&Some(id)) {
                continue;
            }
            match pc.classify(a.mbr()).decision {
                // certainly never dominates the target: no influence on
                // the count
                Some(false) => continue,
                // certain dominator (only if it certainly exists)
                Some(true) if a.existence() >= 1.0 => {
                    complete_count += 1;
                    continue;
                }
                _ => influence.push(Influence::new(id, a, &cfg)),
            }
        }

        let b_dec = Decomposition::with_strategy(target_obj.pdf(), cfg.split_strategy);
        let b_parts = b_dec.partitions();
        let r_dec = Decomposition::with_strategy(reference_obj.pdf(), cfg.split_strategy);
        let r_parts = r_dec.partitions();

        Refiner {
            db: DbView::Single(db),
            cfg,
            predicate,
            target: target_obj,
            reference: reference_obj,
            target_id: target.id(),
            reference_id: reference.id(),
            complete_count,
            influence,
            b_dec: DecSource::Own(b_dec),
            b_parts,
            r_dec: DecSource::Own(r_dec),
            r_parts,
            iteration: 0,
            b_map: None,
            r_map: None,
            cache: Vec::new(),
            cache_dims: (0, 0),
            cache_valid: false,
            open_arena: Vec::new(),
            open_scratch: Vec::new(),
            ugf: Ugf::new(None),
            pool: PoolHandle::default(),
            scratch_pool: None,
            stats: None,
        }
    }

    /// Builds a refiner from a *precomputed* filter result: `complete_count`
    /// certain dominators and `influence_ids` undecided objects. The caller
    /// is responsible for soundness of the classification (used by the
    /// index-accelerated filter, whose subtree tests apply the same
    /// criterion as [`Refiner::new`]).
    pub fn with_filter_result(
        db: &'a Database,
        target: ObjRef<'a>,
        reference: ObjRef<'a>,
        cfg: IdcaConfig,
        predicate: Predicate,
        complete_count: usize,
        influence_ids: Vec<ObjectId>,
    ) -> Self {
        Refiner::with_filter_result_view(
            DbView::Single(db),
            target,
            reference,
            cfg,
            predicate,
            complete_count,
            influence_ids,
        )
    }

    /// [`Refiner::with_filter_result`] over an arbitrary [`DbView`] —
    /// the sharded router's constructor: influence ids are *global* ids
    /// resolved through the view, so one refiner refines against
    /// influence objects scattered across shard databases exactly as if
    /// they lived in one.
    pub fn with_filter_result_view(
        db: DbView<'a>,
        target: ObjRef<'a>,
        reference: ObjRef<'a>,
        cfg: IdcaConfig,
        predicate: Predicate,
        complete_count: usize,
        influence_ids: Vec<ObjectId>,
    ) -> Self {
        let target_obj = db.resolve(target);
        let reference_obj = db.resolve(reference);
        let influence = influence_ids
            .into_iter()
            .map(|id| Influence::new(id, db.get(id), &cfg))
            .collect();
        let b_dec = Decomposition::with_strategy(target_obj.pdf(), cfg.split_strategy);
        let b_parts = b_dec.partitions();
        let r_dec = Decomposition::with_strategy(reference_obj.pdf(), cfg.split_strategy);
        let r_parts = r_dec.partitions();
        Refiner {
            db,
            cfg,
            predicate,
            target: target_obj,
            reference: reference_obj,
            target_id: target.id(),
            reference_id: reference.id(),
            complete_count,
            influence,
            b_dec: DecSource::Own(b_dec),
            b_parts,
            r_dec: DecSource::Own(r_dec),
            r_parts,
            iteration: 0,
            b_map: None,
            r_map: None,
            cache: Vec::new(),
            cache_dims: (0, 0),
            cache_valid: false,
            open_arena: Vec::new(),
            open_scratch: Vec::new(),
            ugf: Ugf::new(None),
            pool: PoolHandle::default(),
            scratch_pool: None,
            stats: None,
        }
    }

    /// Joins a batch-shared refinement context ([`SharedRefineCtx`]):
    /// every decomposition with a database identity — the target and
    /// reference when they live in the database, and every influence
    /// object — switches to the context's [`crate::batch::DecompCache`], so expansion
    /// levels computed by *any* refiner of the batch are replayed by all
    /// others instead of recomputed; the refiner also draws its arena
    /// buffers from the context's [`ScratchPool`] and returns them on
    /// drop. Cached expansions are bit-identical to owned ones
    /// (decomposition is deterministic), so results are unchanged.
    ///
    /// Must be called before refinement starts (construction-time
    /// builder, like [`Refiner::with_pool`]).
    pub fn with_shared_ctx(mut self, ctx: &SharedRefineCtx) -> Self {
        assert!(
            self.iteration == 0 && !self.cache_valid,
            "shared context must be attached before refinement starts"
        );
        let cache = ctx.decomps_arc();
        // a cached level replays only for the split strategy it was
        // computed with; a mismatch would compose lineage maps across
        // two different split trees and corrupt the bounds silently
        assert!(
            cache.strategy() == self.cfg.split_strategy,
            "shared context split strategy differs from the refiner's"
        );
        // deferred handles: no cache lookup (or entry creation) happens
        // until a region actually expands — refiners deciding at
        // iteration 0 never touch the cache at all
        let attach = |source: &mut DecSource, id: Option<ObjectId>| {
            if let Some(id) = id {
                *source = DecSource::Shared {
                    handle: SharedHandle::Deferred(Arc::clone(&cache), id),
                    applied: 0,
                };
            }
        };
        attach(&mut self.b_dec, self.target_id);
        attach(&mut self.r_dec, self.reference_id);
        for inf in &mut self.influence {
            inf.dec = DecSource::Shared {
                handle: SharedHandle::Deferred(Arc::clone(&cache), inf.id),
                applied: 0,
            };
        }
        let scratch = ctx.scratch();
        if let Some(s) = scratch.pop() {
            self.ugf = s.ugf;
            self.open_arena = s.open_arena;
            self.open_scratch = s.open_scratch;
            self.cache = s.cache;
        }
        self.scratch_pool = Some(scratch);
        self
    }

    /// Attaches a shared decomposition for the refiner's single
    /// *external* region — the side of target/reference without a
    /// database id, which [`Refiner::with_shared_ctx`] cannot key into
    /// the id-based cache. In a batch, the query object is that side for
    /// every one of the query's candidate refiners; sharing one
    /// [`crate::batch::SharedDecomp`] across them expands the query
    /// object once per query instead of once per candidate. The handle
    /// must have been built from this refiner's external object's PDF
    /// ([`crate::SharedRefineCtx::external_decomp`]).
    ///
    /// # Panics
    /// Panics if refinement has started, the handle's split strategy
    /// differs, or target/reference are not exactly one external and one
    /// database object.
    pub fn with_external_decomp(mut self, shared: &crate::batch::SharedDecomp) -> Self {
        assert!(
            self.iteration == 0 && !self.cache_valid,
            "shared decomposition must be attached before refinement starts"
        );
        assert!(
            shared.strategy == self.cfg.split_strategy,
            "shared decomposition split strategy differs from the refiner's"
        );
        let slot = match (self.target_id, self.reference_id) {
            (None, Some(_)) => &mut self.b_dec,
            (Some(_), None) => &mut self.r_dec,
            _ => panic!("with_external_decomp needs exactly one external side"),
        };
        *slot = DecSource::Shared {
            handle: SharedHandle::Resolved(Arc::clone(&shared.entry)),
            applied: 0,
        };
        self
    }

    /// Attaches a shared worker pool for parallel snapshots (engines
    /// inject their own so all refiners they build reuse one set of
    /// persistent threads). Without this, a refiner running with
    /// [`IdcaConfig::snapshot_threads`] > 1 lazily creates a private
    /// pool that lives as long as the refiner.
    pub fn with_pool(mut self, pool: PoolHandle) -> Self {
        self.pool = pool;
        self
    }

    /// Attaches a shared [`RefineStats`] sink: every subsequent round
    /// increments the tier-1 (prefilter-decided) or tier-2 (exact UGF)
    /// counter, so callers can measure the two-tier split across many
    /// refiners. Purely observational — counting never changes results.
    pub fn with_stats(mut self, stats: Arc<RefineStats>) -> Self {
        self.stats = Some(stats);
        self
    }

    /// The object storage this refiner resolves influence ids against.
    pub fn db(&self) -> DbView<'a> {
        self.db
    }

    /// Number of certain dominators found by the filter step.
    pub fn complete_count(&self) -> usize {
        self.complete_count
    }

    /// Ids of the influence objects (the `influenceObjects` set of
    /// Algorithm 1), without materializing a vector.
    pub fn influence_ids(&self) -> impl ExactSizeIterator<Item = ObjectId> + '_ {
        self.influence.iter().map(|i| i.id)
    }

    /// Iterations performed so far.
    pub fn iteration(&self) -> usize {
        self.iteration
    }

    /// Cache diagnostics: `(finally_classified_slots, total_slots)` of the
    /// factor cache after the last snapshot. Useful for tuning and for
    /// understanding where snapshot time goes.
    pub fn cache_stats(&self) -> (usize, usize) {
        let settled = self.cache.iter().filter(|e| e.open_len == 0).count();
        (settled, self.cache.len())
    }

    /// Total open (still-classified-per-snapshot) partition references
    /// across all cache slots, and the total the from-scratch path would
    /// test per snapshot.
    pub fn open_stats(&self) -> (usize, usize) {
        let open: usize = self.cache.iter().map(|e| e.open_len as usize).sum();
        let scratch: usize = self.b_parts.len()
            * self.r_parts.len()
            * self.influence.iter().map(|i| i.parts.len()).sum::<usize>();
        (open, scratch)
    }

    /// Effective truncation for the UGFs: the predicate's `k` minus the
    /// certain dominators. `Some(0)` means the predicate is already
    /// decided negatively by the filter alone.
    fn effective_k(&self) -> Option<usize> {
        self.predicate
            .k()
            .map(|k| k.saturating_sub(self.complete_count))
    }

    /// One refinement iteration (lines 15 of Algorithm 1): deepens every
    /// decomposition by one level and records which decompositions
    /// actually changed (the dirty flags steering the next snapshot's
    /// cache refresh). Returns `false` when nothing could be split further
    /// (exact bounds reached for discrete models) or when further
    /// splitting provably cannot change the bounds.
    ///
    /// The second case is the mid-loop retirement of *influence objects*:
    /// after a cached snapshot, an object with no open partition left in
    /// any slot is finally classified — robust decisions are stable under
    /// refinement of any of the three regions, so its factors can never
    /// change again — and it is skipped by every subsequent step. Once
    /// *no* slot anywhere is open, expanding `B`/`R` is equally pointless
    /// (child pairs inherit their ancestor's settled factors verbatim, so
    /// the aggregate is a fixed point) and the step reports exhaustion.
    pub fn step(&mut self) -> bool {
        // per-influence open-reference counts of the last snapshot;
        // settledness is monotone, so counts from the most recent
        // snapshot remain valid across multiple back-to-back steps
        let inf_open = self.cache_valid.then(|| {
            let n_inf = self.influence.len();
            let mut open = vec![0u32; n_inf];
            if n_inf > 0 {
                for (slot_idx, slot) in self.cache.iter().enumerate() {
                    open[slot_idx % n_inf] += slot.open_len;
                }
            }
            open
        });
        if let Some(open) = &inf_open {
            if open.iter().all(|&o| o == 0) {
                return false; // every factor is final: bounds are exact
            }
        }
        let mut progress = false;
        if let Some((parts, map)) = self.b_dec.expand(self.target.pdf()) {
            self.b_parts = parts;
            self.b_map = Some(compose_lineage(self.b_map.take(), map));
            progress = true;
        }
        if let Some((parts, map)) = self.r_dec.expand(self.reference.pdf()) {
            self.r_parts = parts;
            self.r_map = Some(compose_lineage(self.r_map.take(), map));
            progress = true;
        }
        for (inf_idx, inf) in self.influence.iter_mut().enumerate() {
            if let Some(open) = &inf_open {
                if open[inf_idx] == 0 {
                    continue; // finally classified: retired from refinement
                }
            }
            if let Some((parts, map)) = inf.dec.expand(self.db.get(inf.id).pdf()) {
                inf.parts = parts;
                inf.refresh_flat();
                inf.lineage = Some(compose_lineage(inf.lineage.take(), map));
                progress = true;
            }
        }
        if progress {
            self.iteration += 1;
        }
        progress
    }

    /// Shared snapshot prologue: early-exits when the filter already
    /// decided the predicate negatively, otherwise yields the aggregation
    /// vector length and UGF truncation. Keeping this in one place
    /// guarantees [`Refiner::snapshot`] and
    /// [`Refiner::snapshot_from_scratch`] stay aligned.
    #[allow(clippy::result_large_err)]
    fn snapshot_prologue(&self) -> Result<(usize, Option<usize>), DomCountSnapshot> {
        let k_eff = self.effective_k();
        if k_eff == Some(0) {
            let mut bounds = CountDistributionBounds::zero(0);
            bounds.shift_right(self.complete_count);
            return Err(DomCountSnapshot {
                bounds,
                predicate_cdf: Some((0.0, 0.0)),
                complete_count: self.complete_count,
                influence_count: self.influence.len(),
                iteration: self.iteration,
            });
        }
        let n_inf = self.influence.len();
        let len = match k_eff {
            Some(k) => (n_inf + 1).min(k),
            None => n_inf + 1,
        };
        Ok((len, k_eff))
    }

    /// Evaluates the current bounds (lines 16–36 of Algorithm 1): one UGF
    /// per partition pair `(B', R')`, aggregated by pair probability and
    /// shifted by the complete-domination count.
    ///
    /// Incremental: only factors invalidated since the previous snapshot
    /// are recomputed (see the module docs), and the pair loop runs on
    /// [`IdcaConfig::snapshot_threads`] scoped threads. The very first
    /// snapshot (iteration 0, before any [`Refiner::step`]) takes the
    /// cache-free path — threshold queries frequently decide right there,
    /// and building the factor cache for a refiner that never iterates
    /// would be pure overhead.
    pub fn snapshot(&mut self) -> DomCountSnapshot {
        self.note_exact();
        if self.iteration == 0 && !self.cache_valid {
            return self.snapshot_from_scratch();
        }
        let n_inf = self.influence.len();
        let (len, k_eff) = match self.snapshot_prologue() {
            Ok(header) => header,
            Err(snapshot) => return snapshot,
        };
        let truncate = k_eff;

        // the sink owns the refiner's persistent UGF arena for the
        // duration of the pair loop (returned below, so the steady-state
        // snapshot keeps reusing one allocation)
        let mut sink = ExactSink {
            ugf: std::mem::replace(&mut self.ugf, Ugf::new(None)),
            agg: CountDistributionBounds::zero(len),
            cdf_acc: k_eff.map(|_| (0.0f64, 0.0f64)),
        };
        self.snapshot_pairs(truncate, k_eff, &mut sink, &|| ExactSink {
            ugf: Ugf::new(truncate),
            agg: CountDistributionBounds::zero(len),
            cdf_acc: k_eff.map(|_| (0.0f64, 0.0f64)),
        });
        let ExactSink {
            ugf,
            mut agg,
            cdf_acc,
        } = sink;
        self.ugf = ugf;

        agg.normalize();
        agg.shift_right(self.complete_count);

        DomCountSnapshot {
            bounds: agg,
            predicate_cdf: cdf_acc.map(|(lo, hi)| (lo.clamp(0.0, 1.0), hi.clamp(0.0, 1.0))),
            complete_count: self.complete_count,
            influence_count: n_inf,
            iteration: self.iteration,
        }
    }

    /// The shared pair-loop engine behind both snapshot tiers: refreshes
    /// the factor cache for the current refinement state — identically
    /// for every sink, classification never depends on the algebra — and
    /// streams each positive-weight pair's factor bounds into `sink`.
    /// `fork` builds the chunk-private sinks of the parallel path; their
    /// partials are absorbed in chunk order, so any given sink type
    /// observes exactly the operation sequence the sequential path runs.
    fn snapshot_pairs<S: PairSink>(
        &mut self,
        truncate: Option<usize>,
        k_eff: Option<usize>,
        sink: &mut S,
        fork: &(dyn Fn() -> S + Sync),
    ) {
        let n_inf = self.influence.len();
        let n_pairs = self.b_parts.len() * self.r_parts.len();
        // `old` (the previous-generation cache) and `ancestors` (each new
        // pair's pair index in it) stay alive through processing so open
        // lists can be streamed from the ancestor slots without cloning.
        let mut old: Vec<FactorCache> = Vec::new();
        let mut ancestors: Vec<u32> = Vec::new();
        let any_inf_dirty = self.influence.iter().any(|inf| inf.lineage.is_some());
        let mode = if !self.cache_valid
            || self.cache.len() != self.cache_dims.0 * self.cache_dims.1 * n_inf
        {
            self.cache.clear();
            self.cache.resize_with(n_pairs * n_inf, FactorCache::empty);
            RefreshMode::Full
        } else if self.b_map.is_some() || self.r_map.is_some() {
            // remap: carry every new pair's slots from its ancestor pair;
            // settled mass is final by monotonicity, open partitions are
            // re-evaluated against the shrunken pair regions below
            old = std::mem::take(&mut self.cache);
            let (_, old_r_len) = self.cache_dims;
            let r_len = self.r_parts.len();
            self.cache.reserve(n_pairs * n_inf);
            ancestors.reserve(n_pairs);
            for new_pair in 0..n_pairs {
                let ob = match &self.b_map {
                    Some(map) => map[new_pair / r_len] as usize,
                    None => new_pair / r_len,
                };
                let or = match &self.r_map {
                    Some(map) => map[new_pair % r_len] as usize,
                    None => new_pair % r_len,
                };
                let old_pair = ob * old_r_len + or;
                ancestors.push(old_pair as u32);
                for anc in &old[old_pair * n_inf..(old_pair + 1) * n_inf] {
                    self.cache.push(FactorCache::carried_from(anc));
                }
            }
            RefreshMode::Remapped
        } else if any_inf_dirty {
            RefreshMode::InPlace
        } else {
            RefreshMode::Clean
        };
        let rebuild = mode != RefreshMode::Clean;
        self.open_scratch.clear();
        let remap_ctx = (&old[..], &ancestors[..]);
        self.b_map = None;
        self.r_map = None;
        self.cache_dims = (self.b_parts.len(), self.r_parts.len());

        // lineage prefix offsets per influence object (children of old
        // partition `p` occupy new indices `offsets[p]..offsets[p+1]`);
        // irrelevant after a full rebuild
        let inf_offsets: Vec<Option<Vec<u32>>> = if mode == RefreshMode::Full {
            self.influence.iter().map(|_| None).collect()
        } else {
            self.influence
                .iter()
                .map(|inf| {
                    inf.lineage.as_ref().map(|map| {
                        let mut offsets = vec![0u32; 1];
                        for (new_idx, &old_idx) in map.iter().enumerate() {
                            while offsets.len() <= old_idx as usize {
                                offsets.push(new_idx as u32);
                            }
                            debug_assert!(offsets.len() == old_idx as usize + 1);
                        }
                        offsets.push(map.len() as u32);
                        offsets
                    })
                })
                .collect()
        };

        let threads = self.cfg.snapshot_threads.max(1).min(n_pairs.max(1));
        if threads <= 1 {
            process_pair_range(
                0,
                n_pairs,
                &self.b_parts,
                &self.r_parts,
                &self.influence,
                &inf_offsets,
                remap_ctx,
                &self.open_arena,
                &mut self.cache,
                &mut self.open_scratch,
                mode,
                &self.cfg,
                truncate,
                k_eff,
                sink,
            );
        } else {
            let pool = self
                .pool
                .get(threads)
                .expect("threads > 1 always yields a pool");
            let chunk = n_pairs.div_ceil(threads);
            let n_chunks = n_pairs.div_ceil(chunk);
            // one result slot per chunk, filled by the pool jobs and
            // merged in chunk order below: deterministic for a fixed
            // thread count
            let mut results: Vec<Option<(S, Vec<u32>)>> = (0..n_chunks).map(|_| None).collect();
            {
                let b_parts = &self.b_parts;
                let r_parts = &self.r_parts;
                let influence = &self.influence;
                let offsets = &inf_offsets;
                let ctx = remap_ctx;
                let old_arena = &self.open_arena;
                let cfg = &self.cfg;
                let mut cache_rest: &mut [FactorCache] = &mut self.cache;
                let mut results_rest: &mut [Option<(S, Vec<u32>)>] = &mut results;
                let mut jobs: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::with_capacity(n_chunks);
                for t in 0..n_chunks {
                    let start = t * chunk;
                    let end = (start + chunk).min(n_pairs);
                    let (mine, rest) = cache_rest.split_at_mut((end - start) * n_inf);
                    cache_rest = rest;
                    let (out, rest) = results_rest.split_at_mut(1);
                    results_rest = rest;
                    let out = &mut out[0];
                    jobs.push(Box::new(move || {
                        let mut local_sink = fork();
                        // chunk-private arena segment, rebased into the
                        // shared generation after the scope
                        let mut local_arena = Vec::new();
                        process_pair_range(
                            start,
                            end,
                            b_parts,
                            r_parts,
                            influence,
                            offsets,
                            ctx,
                            old_arena,
                            mine,
                            &mut local_arena,
                            mode,
                            cfg,
                            truncate,
                            k_eff,
                            &mut local_sink,
                        );
                        *out = Some((local_sink, local_arena));
                    }));
                }
                pool.scope(jobs);
            }
            for (t, result) in results.into_iter().enumerate() {
                let (local_sink, local_arena) = result.expect("snapshot chunk completed");
                sink.absorb(local_sink);
                if rebuild {
                    // concatenate the chunk's arena segment and rebase its
                    // slots' ranges onto the shared generation
                    let base = self.open_scratch.len();
                    assert!(
                        base + local_arena.len() <= u32::MAX as usize,
                        "open-list arena overflow"
                    );
                    let start = t * chunk;
                    let end = (start + chunk).min(n_pairs);
                    for slot in &mut self.cache[start * n_inf..end * n_inf] {
                        if slot.open_len > 0 {
                            slot.open_start += base as u32;
                        }
                    }
                    self.open_scratch.extend_from_slice(&local_arena);
                }
            }
        }
        if rebuild {
            // the new generation becomes current; the old buffer is the
            // next snapshot's scratch (capacity reused)
            std::mem::swap(&mut self.open_arena, &mut self.open_scratch);
        }

        self.cache_valid = true;
        for inf in &mut self.influence {
            inf.lineage = None;
        }
    }

    /// Cache-free snapshot: recomputes every factor of every partition
    /// pair, sequentially. Kept as the reference path — the incremental
    /// [`Refiner::snapshot`] must agree with it at every iteration (up to
    /// float reassociation, ≲ 1e-13) — and as the baseline the `idca`
    /// bench measures the incremental speedup against.
    pub fn snapshot_from_scratch(&self) -> DomCountSnapshot {
        let n_inf = self.influence.len();
        let (len, k_eff) = match self.snapshot_prologue() {
            Ok(header) => header,
            Err(snapshot) => return snapshot,
        };
        let truncate = k_eff;

        let mut agg = CountDistributionBounds::zero(len);
        let mut cdf_acc = k_eff.map(|_| (0.0f64, 0.0f64));
        let mut ugf = Ugf::new(truncate);

        for bp in &self.b_parts {
            for rp in &self.r_parts {
                let w = bp.mass * rp.mass;
                if w <= 0.0 {
                    continue;
                }
                ugf.reset(truncate);
                for inf in &self.influence {
                    let bounds = pdom_bounds_vs_fixed(
                        &inf.parts,
                        &bp.mbr,
                        &rp.mbr,
                        self.cfg.norm,
                        self.cfg.criterion,
                    );
                    let PDomBounds { lower, upper } = bounds.scale_by_existence(inf.existence);
                    ugf.multiply(lower, upper);
                }
                ugf.add_bounds_weighted(&mut agg, w);
                if let (Some(k), Some(acc)) = (k_eff, cdf_acc.as_mut()) {
                    let (lo, hi) = ugf.cdf_bounds(k.min(n_inf + 1));
                    // counts can never reach k when k > n_inf: cdf = 1
                    let (lo, hi) = if k > n_inf { (1.0, 1.0) } else { (lo, hi) };
                    acc.0 += w * lo;
                    acc.1 += w * hi;
                }
            }
        }
        agg.normalize();
        agg.shift_right(self.complete_count);

        DomCountSnapshot {
            bounds: agg,
            predicate_cdf: cdf_acc.map(|(lo, hi)| (lo.clamp(0.0, 1.0), hi.clamp(0.0, 1.0))),
            complete_count: self.complete_count,
            influence_count: n_inf,
            iteration: self.iteration,
        }
    }

    /// Whether the stop criterion of Algorithm 1 is met for `snap`
    /// (iteration budget, a decided threshold predicate, or the
    /// uncertainty target). Public so the lock-step drivers
    /// ([`refine_lockstep`], [`refine_top_m`]) replicate
    /// [`Refiner::run`]'s stopping behaviour exactly.
    pub fn converged(&self, snap: &DomCountSnapshot) -> bool {
        if self.iteration >= self.cfg.max_iterations {
            return true;
        }
        if let Predicate::Threshold { tau, .. } = self.predicate {
            if snap.decided(tau).is_some() {
                return true;
            }
        }
        snap.uncertainty() <= self.cfg.uncertainty_target
    }

    /// Slack the tier-1 skip proofs keep between a cheap bracket and the
    /// decision boundary it argues about. The brackets are mathematically
    /// conservative; the margin only absorbs the O(n)-summation float
    /// noise between the bracket computed here and the exact endpoint the
    /// fall-through snapshot would produce, so a skip is never justified
    /// by a bound that merely *ties* the exact value.
    const PREFILTER_MARGIN: f64 = 1e-9;

    /// Counts one exact (tier-2) snapshot into the attached stats sink.
    fn note_exact(&self) {
        if let Some(stats) = &self.stats {
            stats.tier2_exact.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Tier-1 pass over the *cached* pair loop: same cache refresh as an
    /// exact snapshot (so a same-round exact fall-through runs in `Clean`
    /// mode and reproduces the dirty-mode aggregation bit-for-bit), but
    /// aggregates O(n) min/max brackets instead of UGFs.
    fn cheap_snapshot(&mut self, k_eff: usize) -> CheapAgg {
        let truncate = Some(k_eff);
        let mut sink = CheapSink::new(k_eff);
        self.snapshot_pairs(truncate, Some(k_eff), &mut sink, &|| CheapSink::new(k_eff));
        sink.agg
    }

    /// Tier-1 pass matching [`Refiner::snapshot_from_scratch`]: classifies
    /// every pair directly, touching no cache state — the iteration-0
    /// exact path is cache-free, and the cheap tier must leave the refiner
    /// in the same state that path would.
    fn cheap_from_scratch(&self, k_eff: usize) -> CheapAgg {
        let truncate = Some(k_eff);
        let mut sink = CheapSink::new(k_eff);
        for bp in &self.b_parts {
            for rp in &self.r_parts {
                let w = bp.mass * rp.mass;
                if w <= 0.0 {
                    continue;
                }
                sink.begin_pair(truncate);
                for inf in &self.influence {
                    let bounds = pdom_bounds_vs_fixed(
                        &inf.parts,
                        &bp.mbr,
                        &rp.mbr,
                        self.cfg.norm,
                        self.cfg.criterion,
                    );
                    let PDomBounds { lower, upper } = bounds.scale_by_existence(inf.existence);
                    sink.factor(lower, upper);
                }
                sink.finish_pair(w, Some(k_eff), self.influence.len());
            }
        }
        sink.agg
    }

    /// Tier-1 skip decision: `true` iff the cheap brackets *prove* that
    /// this round's exact snapshot would neither satisfy any stop
    /// criterion nor decide the threshold predicate (or the `goal_tau`
    /// the lock-step driver also checks) — in which case computing it is
    /// pure overhead and the round can go straight to [`Refiner::step`].
    /// The cheap tier never decides an outcome; any doubt falls through
    /// to the exact tier, which is what keeps results bit-identical with
    /// the prefilter off.
    fn round_skippable(&mut self, goal_tau: Option<f64>) -> bool {
        if !self.cfg.prefilter {
            return false;
        }
        if self.iteration >= self.cfg.max_iterations {
            return false; // iteration budget: the driver stops either way
        }
        // the uncertainty proof needs the bracket-gap >= exact-CDF-gap
        // counting argument, which holds only under k-truncation
        let Some(k_eff) = self.effective_k() else {
            return false;
        };
        if k_eff == 0 {
            return false; // prologue early-exit: snapshot is trivial anyway
        }
        let cheap = if self.iteration == 0 && !self.cache_valid {
            self.cheap_from_scratch(k_eff)
        } else {
            self.cheap_snapshot(k_eff)
        };
        let margin = Self::PREFILTER_MARGIN;
        // exact predicate uncertainty >= exact cdf_hi - cdf_lo
        //                            >= (hi_lo) - (lo_hi)  (raw brackets)
        if cheap.hi_lo - cheap.lo_hi - margin <= self.cfg.uncertainty_target {
            return false;
        }
        let pred_tau = match self.predicate {
            Predicate::Threshold { tau, .. } => Some(tau),
            _ => None,
        };
        let lo_hi = cheap.lo_hi.clamp(0.0, 1.0);
        let hi_lo = cheap.hi_lo.clamp(0.0, 1.0);
        for tau in [pred_tau, goal_tau].into_iter().flatten() {
            // decided means lo > tau or hi <= tau: refute both by
            // bracketing lo from above below tau and hi from below above
            if lo_hi + margin > tau || hi_lo - margin <= tau {
                return false;
            }
        }
        if let Some(stats) = &self.stats {
            stats.tier1_skipped.fetch_add(1, Ordering::Relaxed);
        }
        true
    }

    /// Tier-1 upfront drop for the top-`m` driver: `true` iff every
    /// positive-weight pair certainly contributes `P(count < k) = 0.0`
    /// *exactly*, i.e. has at least `k_eff` factors with scaled
    /// `p_lb == 1.0`. Each such factor is a pure `x`-shift of the UGF, so
    /// every coefficient in rows below `k_eff` is exactly `0.0` in float
    /// (truncated or not) — the exact snapshot's predicate CDF is the
    /// float constant `(0.0, 0.0)`, [`threshold_result`] drops the
    /// candidate, and its zero lower bound never retires a rival. Unlike
    /// [`Refiner::round_skippable`] this is decision-free *and*
    /// float-noise-free, so it is safe even though top-`m` rounds can
    /// never be skipped (rivals consume every candidate's lower bound
    /// each round).
    fn certainly_zero(&self) -> bool {
        if !self.cfg.prefilter {
            return false;
        }
        let Some(k_eff) = self.effective_k() else {
            return false;
        };
        if k_eff == 0 {
            // the filter alone found k certain dominators: the prologue
            // early-exit already returns an exact (0, 0) CDF
            if let Some(stats) = &self.stats {
                stats.tier1_skipped.fetch_add(1, Ordering::Relaxed);
            }
            return true;
        }
        if self.influence.len() < k_eff {
            return false;
        }
        let mut alg = MinMaxCdf::new(Some(k_eff));
        for bp in &self.b_parts {
            for rp in &self.r_parts {
                if bp.mass * rp.mass <= 0.0 {
                    continue;
                }
                ProbAlgebra::reset(&mut alg, Some(k_eff));
                for inf in &self.influence {
                    let bounds = pdom_bounds_vs_fixed(
                        &inf.parts,
                        &bp.mbr,
                        &rp.mbr,
                        self.cfg.norm,
                        self.cfg.criterion,
                    );
                    let PDomBounds { lower, upper } = bounds.scale_by_existence(inf.existence);
                    alg.multiply(lower, upper);
                }
                if alg.ones_lb() < k_eff {
                    return false;
                }
            }
        }
        if let Some(stats) = &self.stats {
            stats.tier1_skipped.fetch_add(1, Ordering::Relaxed);
        }
        true
    }

    /// Runs filter + iterations until the stop criterion fires; returns
    /// the final snapshot. With [`IdcaConfig::prefilter`] on, rounds the
    /// tier-1 brackets prove undecidable skip their exact snapshot.
    pub fn run(&mut self) -> DomCountSnapshot {
        loop {
            if self.round_skippable(None) {
                if self.step() {
                    continue;
                }
                // exhausted right after a skip: step() mutated nothing,
                // so this snapshot equals the one the skip elided
                return self.snapshot();
            }
            let snap = self.snapshot();
            if self.converged(&snap) || !self.step() {
                return snap;
            }
        }
    }
}

/// Converts a final snapshot into a query result; `None` when the
/// candidate's predicate probability is certainly zero.
fn threshold_result(id: ObjectId, snap: &DomCountSnapshot) -> Option<ThresholdResult> {
    let (lo, hi) = snap.predicate_cdf.expect("count predicate produces CDF");
    (hi > 0.0).then_some(ThresholdResult {
        id,
        prob_lower: lo,
        prob_upper: hi,
        iterations: snap.iteration,
    })
}

/// Lock-step early-exit refinement of a candidate set: one [`Refiner`]
/// per candidate, all stepped in rounds; after every round the
/// candidates whose outcome is decided (per the [`RefineGoal`]) or whose
/// refiner hit its own stop criterion are retired — swap-removed from
/// the active set, their factor cache and open-list arena freed — and
/// subsequent rounds iterate only the survivors, so the candidate set
/// shrinks *during* refinement.
///
/// Retirement here is purely per-candidate (the [`RefineGoal`] decision,
/// the refiner's own stop criterion, or exhaustion), which frees the
/// execution shape:
///
/// * **one lane** ([`IdcaConfig::candidate_threads`] <= 1): candidates
///   are driven *depth-first* — each one refined to its stop before the
///   next is touched — so a candidate's factor cache and arenas stay hot
///   instead of being cycled through every round;
/// * **multiple lanes**: each round's per-candidate `step()`/`snapshot()`
///   calls fan out over the engines' shared
///   [`crate::parallel::WorkerPool`] (lane-bounded candidate chunks, via
///   [`crate::parallel::PoolHandle::fan_each`]), and retirement decisions
///   are made on the calling thread after the round, in candidate order.
///   Candidate jobs may nest pair-loop scopes on the same pool
///   ([`IdcaConfig::snapshot_threads`]) without deadlock.
///
/// Results are **bit-identical for every lane count** — each candidate's
/// own operation sequence is exactly [`Refiner::run`]'s in either shape.
///
/// Candidates whose predicate probability is certainly zero are dropped,
/// and the output is sorted by id.
pub fn refine_lockstep(
    candidates: Vec<(ObjectId, Refiner<'_>)>,
    goal: RefineGoal,
) -> Vec<ThresholdResult> {
    struct Active<'a> {
        id: ObjectId,
        refiner: Refiner<'a>,
        /// `None` only before the initial snapshot round.
        snap: Option<DomCountSnapshot>,
        stalled: bool,
        /// The last round's exact snapshot was elided by the tier-1
        /// prefilter (so `snap` is stale and must not drive retirement).
        skipped: bool,
    }
    let lanes = candidates
        .iter()
        .map(|(_, r)| r.cfg.candidate_threads)
        .max()
        .unwrap_or(1);
    if lanes <= 1 {
        // single lane: retirement in refine_lockstep is purely
        // per-candidate (goal.decided / converged / stalled inspect one
        // candidate only), so candidate order is free — finish each
        // candidate before touching the next instead of cycling through
        // every live refiner's caches per round. Identical per-candidate
        // operation sequence, identical results, much better locality.
        let mut done: Vec<ThresholdResult> = Vec::new();
        for (id, mut refiner) in candidates {
            let snap = loop {
                if refiner.round_skippable(goal.tau) {
                    if refiner.step() {
                        continue;
                    }
                    // exhausted right after a skip: state is unchanged,
                    // so this equals the snapshot the skip elided
                    break refiner.snapshot();
                }
                let snap = refiner.snapshot();
                if goal.decided(&snap) || refiner.converged(&snap) || !refiner.step() {
                    break snap;
                }
            };
            done.extend(threshold_result(id, &snap));
        }
        done.sort_by_key(|r| r.id);
        return done;
    }
    let pool = candidates
        .first()
        .map(|(_, r)| r.pool.clone())
        .unwrap_or_default();
    let mut done: Vec<ThresholdResult> = Vec::new();
    let mut active: Vec<Active<'_>> = candidates
        .into_iter()
        .map(|(id, refiner)| Active {
            id,
            refiner,
            snap: None,
            stalled: false,
            skipped: false,
        })
        .collect();
    // round 0: every candidate's initial snapshot (filter-level bounds)
    pool.fan_each(lanes, &mut active, |cand| {
        if cand.refiner.round_skippable(goal.tau) {
            cand.skipped = true;
        } else {
            cand.snap = Some(cand.refiner.snapshot());
            cand.skipped = false;
        }
    });
    while !active.is_empty() {
        let mut i = 0;
        while i < active.len() {
            let cand = &active[i];
            // a skipped round is proven undecided and unconverged, so it
            // can only be retired by stalling (which re-snapshots below)
            if cand.stalled
                || (!cand.skipped && {
                    let snap = cand.snap.as_ref().expect("snapshot round completed");
                    goal.decided(snap) || cand.refiner.converged(snap)
                })
            {
                // swap-remove retirement: dropping the refiner frees its
                // state; the final sort restores a deterministic order
                let retired = active.swap_remove(i);
                done.extend(threshold_result(
                    retired.id,
                    retired.snap.as_ref().expect("snapshot round completed"),
                ));
            } else {
                i += 1;
            }
        }
        // one lock-step round: candidates advance independently (their
        // state never crosses), so fanning is exact, not approximate
        pool.fan_each(lanes, &mut active, |cand| {
            if cand.refiner.step() {
                if cand.refiner.round_skippable(goal.tau) {
                    cand.skipped = true;
                } else {
                    cand.snap = Some(cand.refiner.snapshot());
                    cand.skipped = false;
                }
            } else {
                cand.stalled = true; // decompositions exhausted: bounds final
                if cand.skipped {
                    // the failed step mutated nothing: this recovers the
                    // exact snapshot the previous round's skip elided
                    cand.snap = Some(cand.refiner.snapshot());
                    cand.skipped = false;
                }
            }
        });
    }
    done.sort_by_key(|r| r.id);
    done
}

/// Lock-step refinement for a top-`m` query (highest `P(DomCount < k)`):
/// besides each refiner's own stop criterion, a candidate retires early
/// once at least `m` rivals' lower bounds exceed its upper bound — it is
/// then certainly outside the top `m`, and since bounds only tighten it
/// stays outside, so the returned top-`m` set equals the
/// run-to-convergence path's while the also-rans stop burning
/// iterations. Returns the top `m` by bound midpoint (ties and overlaps
/// are visible in the returned bounds).
///
/// Rounds fan over the worker pool exactly like [`refine_lockstep`]
/// ([`IdcaConfig::candidate_threads`] lanes, bit-identical results at
/// any lane count); the cross-candidate bound comparison between rounds
/// always runs on the calling thread, over the merged snapshots.
pub fn refine_top_m(
    mut candidates: Vec<(ObjectId, Refiner<'_>)>,
    m: usize,
) -> Vec<ThresholdResult> {
    assert!(m >= 1, "m must be positive");
    // tier-1 upfront drop: a candidate whose predicate CDF is exactly
    // (0.0, 0.0) is dropped by threshold_result on the exact path too,
    // and its 0.0 lower bound can never retire a rival — removing it
    // before the rounds changes nothing downstream. Rounds themselves
    // stay exact: rivals consume every candidate's lower bound each
    // round, so no round can be skipped.
    candidates.retain(|(_, r)| !r.certainly_zero());
    struct Cand<'a> {
        id: ObjectId,
        /// `None` once retired (state freed; `snap` keeps the bounds).
        refiner: Option<Refiner<'a>>,
        /// `None` only before the initial snapshot round.
        snap: Option<DomCountSnapshot>,
        stalled: bool,
    }
    let lanes = candidates
        .iter()
        .map(|(_, r)| r.cfg.candidate_threads)
        .max()
        .unwrap_or(1);
    let pool = candidates
        .first()
        .map(|(_, r)| r.pool.clone())
        .unwrap_or_default();
    let mut cands: Vec<Cand<'_>> = candidates
        .into_iter()
        .map(|(id, refiner)| Cand {
            id,
            refiner: Some(refiner),
            snap: None,
            stalled: false,
        })
        .collect();
    pool.fan_each(lanes, &mut cands, |c| {
        if let Some(refiner) = &mut c.refiner {
            c.snap = Some(refiner.snapshot());
        }
    });
    loop {
        for c in &mut cands {
            if let Some(refiner) = &c.refiner {
                if c.stalled || refiner.converged(c.snap.as_ref().expect("snapshot completed")) {
                    c.refiner = None;
                }
            }
        }
        // cross-candidate early exit: certainly outside the top m
        let lowers: Vec<f64> = cands.iter().map(|c| cand_cdf(c.snap.as_ref()).0).collect();
        for (i, c) in cands.iter_mut().enumerate() {
            if c.refiner.is_none() {
                continue;
            }
            let hi = cand_cdf(c.snap.as_ref()).1;
            let beaten_by = lowers
                .iter()
                .enumerate()
                .filter(|&(j, &lo)| j != i && lo > hi)
                .count();
            if beaten_by >= m {
                c.refiner = None;
            }
        }
        if cands.iter().all(|c| c.refiner.is_none()) {
            break;
        }
        // one lock-step round over the still-active candidates (retired
        // entries keep their final snapshot; their job is a no-op)
        pool.fan_each(lanes, &mut cands, |c| {
            if let Some(refiner) = &mut c.refiner {
                if refiner.step() {
                    c.snap = Some(refiner.snapshot());
                } else {
                    c.stalled = true;
                }
            }
        });
    }
    let mut results: Vec<ThresholdResult> = cands
        .into_iter()
        .filter_map(|c| threshold_result(c.id, c.snap.as_ref().expect("snapshot completed")))
        .collect();
    results.sort_by(|a, b| {
        (b.prob_lower + b.prob_upper)
            .partial_cmp(&(a.prob_lower + a.prob_upper))
            .expect("NaN probability")
            // deterministic tie-break: candidate order must not decide
            // the truncation boundary (the scan path ties the same way)
            .then_with(|| a.id.cmp(&b.id))
    });
    results.truncate(m);
    results
}

/// The predicate CDF of a candidate snapshot (top-`m` driver helper).
fn cand_cdf(snap: Option<&DomCountSnapshot>) -> (f64, f64) {
    snap.expect("snapshot round completed")
        .predicate_cdf
        .expect("count predicate")
}

/// Composes partition-lineage maps across consecutive expansions:
/// `prev` maps the intermediate order to the cached order (or `None` when
/// this is the first expansion since the cache refresh), `next` maps the
/// newest order to the intermediate one.
fn compose_lineage(prev: Option<Vec<u32>>, next: Vec<u32>) -> Vec<u32> {
    match prev {
        None => next,
        Some(prev) => next.into_iter().map(|i| prev[i as usize]).collect(),
    }
}

/// The aggregation half of a snapshot pass, decoupled from the cache
/// refresh: [`process_pair_range`] streams every positive-weight pair's
/// factor bounds into one of these. [`ExactSink`] is the paper's §IV-E
/// aggregation (one UGF per pair, weighted count bounds plus predicate
/// CDF); [`CheapSink`] is the tier-1 O(n) bracket aggregation. Keeping
/// the refresh shared guarantees both tiers maintain byte-identical
/// cache and arena state, which is what lets a same-round exact snapshot
/// after a cheap pass run in `Clean` mode without changing a bit.
trait PairSink: Send {
    /// Starts a new pair (the exact sink resets its UGF arena).
    fn begin_pair(&mut self, truncate: Option<usize>);
    /// One influence factor with probability bounds `[p_lb, p_ub]`.
    fn factor(&mut self, p_lb: f64, p_ub: f64);
    /// Ends the pair, folding its aggregate in with weight `w`.
    fn finish_pair(&mut self, w: f64, k_eff: Option<usize>, n_inf: usize);
    /// Folds a parallel chunk's partial (absorbed in chunk order) in.
    fn absorb(&mut self, other: Self);
}

/// The exact (tier-2) aggregation state of one snapshot pass.
struct ExactSink {
    ugf: Ugf,
    agg: CountDistributionBounds,
    cdf_acc: Option<(f64, f64)>,
}

impl PairSink for ExactSink {
    fn begin_pair(&mut self, truncate: Option<usize>) {
        self.ugf.reset(truncate);
    }

    fn factor(&mut self, p_lb: f64, p_ub: f64) {
        self.ugf.multiply(p_lb, p_ub);
    }

    fn finish_pair(&mut self, w: f64, k_eff: Option<usize>, n_inf: usize) {
        self.ugf.add_bounds_weighted(&mut self.agg, w);
        if let (Some(k), Some(acc)) = (k_eff, self.cdf_acc.as_mut()) {
            let (lo, hi) = self.ugf.cdf_bounds(k.min(n_inf + 1));
            // counts can never reach k when k > n_inf: cdf = 1
            let (lo, hi) = if k > n_inf { (1.0, 1.0) } else { (lo, hi) };
            acc.0 += w * lo;
            acc.1 += w * hi;
        }
    }

    fn absorb(&mut self, other: Self) {
        self.agg.add_weighted(&other.agg, 1.0);
        if let (Some(acc), Some((lo, hi))) = (self.cdf_acc.as_mut(), other.cdf_acc) {
            acc.0 += lo;
            acc.1 += hi;
        }
    }
}

/// Weighted sums of the tier-1 brackets around the exact predicate CDF:
/// `lo_hi` upper-bounds the exact CDF *lower* endpoint and `hi_lo`
/// lower-bounds the exact *upper* endpoint (both raw, unclamped — the
/// skip proofs need the raw gap for the uncertainty bound).
#[derive(Debug, Clone, Copy)]
struct CheapAgg {
    lo_hi: f64,
    hi_lo: f64,
}

/// The cheap (tier-1) aggregation state: one [`MinMaxCdf`] per pair.
struct CheapSink {
    alg: MinMaxCdf,
    agg: CheapAgg,
}

impl CheapSink {
    fn new(k_eff: usize) -> Self {
        CheapSink {
            alg: MinMaxCdf::new(Some(k_eff)),
            agg: CheapAgg {
                lo_hi: 0.0,
                hi_lo: 0.0,
            },
        }
    }
}

impl PairSink for CheapSink {
    fn begin_pair(&mut self, truncate: Option<usize>) {
        ProbAlgebra::reset(&mut self.alg, truncate);
    }

    fn factor(&mut self, p_lb: f64, p_ub: f64) {
        self.alg.multiply(p_lb, p_ub);
    }

    fn finish_pair(&mut self, w: f64, k_eff: Option<usize>, n_inf: usize) {
        let k = k_eff.expect("cheap tier runs only under a count predicate");
        if k > n_inf {
            // counts can never reach k: the exact CDF is exactly (1, 1)
            self.agg.lo_hi += w;
            self.agg.hi_lo += w;
        } else {
            let ((_, lo_hi), (hi_lo, _)) = self.alg.cdf_brackets(k);
            self.agg.lo_hi += w * lo_hi;
            self.agg.hi_lo += w * hi_lo;
        }
    }

    fn absorb(&mut self, other: Self) {
        self.agg.lo_hi += other.agg.lo_hi;
        self.agg.hi_lo += other.agg.hi_lo;
    }
}

/// Processes the pairs `start..end` (global pair indices): refreshes their
/// cache slots where needed, writes their new-generation open lists into
/// `arena` and streams the §IV-E aggregation into `sink`.
/// `cache` holds exactly the slots of this range, row-major by pair;
/// `old_arena` is the previous arena generation all incoming open ranges
/// point into. Shared by the sequential and pool-parallel snapshot paths
/// so both produce the same per-pair operation sequence.
#[allow(clippy::too_many_arguments)]
fn process_pair_range<S: PairSink>(
    start: usize,
    end: usize,
    b_parts: &[Partition],
    r_parts: &[Partition],
    influence: &[Influence],
    inf_offsets: &[Option<Vec<u32>>],
    remap_ctx: (&[FactorCache], &[u32]),
    old_arena: &[u32],
    cache: &mut [FactorCache],
    arena: &mut Vec<u32>,
    mode: RefreshMode,
    cfg: &IdcaConfig,
    truncate: Option<usize>,
    k_eff: Option<usize>,
    sink: &mut S,
) {
    let n_inf = influence.len();
    let r_len = r_parts.len();
    let (old, ancestors) = remap_ctx;
    for pair_idx in start..end {
        let bp = &b_parts[pair_idx / r_len];
        let rp = &r_parts[pair_idx % r_len];
        let w = bp.mass * rp.mass;
        if w <= 0.0 {
            continue;
        }
        let slots = &mut cache[(pair_idx - start) * n_inf..(pair_idx - start + 1) * n_inf];
        // the pair's precomputed criterion half: every classification of
        // this pair — object pre-tests and partition streams alike —
        // shares it, so only partition-side terms run in the hot loop
        let pc = (mode != RefreshMode::Clean)
            .then(|| PairClassifier::new(&bp.mbr, &rp.mbr, cfg.criterion, cfg.norm));
        sink.begin_pair(truncate);
        for ((inf_idx, (inf, offsets)), slot) in influence
            .iter()
            .zip(inf_offsets)
            .enumerate()
            .zip(slots.iter_mut())
        {
            match mode {
                // seed from the full partition list
                RefreshMode::Full => {
                    let pc = pc.as_ref().expect("classifier built for rebuild modes");
                    slot.classify_into(0..inf.parts.len() as u32, inf, pc, arena);
                }
                // stream the ancestor slot's open list (already expanded
                // through the influence lineage when that also changed);
                // a slot with nothing open can never change — its bounds
                // are settled mass only, stable under any refinement
                RefreshMode::Remapped => {
                    let anc = &old[ancestors[pair_idx] as usize * n_inf + inf_idx];
                    if anc.open_len > 0 {
                        let pc = pc.as_ref().expect("classifier built for rebuild modes");
                        // object-level pre-test: if the whole object
                        // robustly decides against the shrunken pair,
                        // every open partition decides identically
                        let obj = pc.classify(&inf.mbr);
                        if let (Some(dominates), true) = (obj.decision, obj.robust) {
                            slot.settle_open(dominates, inf.existence);
                        } else {
                            let anc_open = &old_arena[anc.open_range()];
                            match offsets {
                                Some(offsets) => slot.classify_into(
                                    anc_open.iter().flat_map(|&p| {
                                        offsets[p as usize]..offsets[p as usize + 1]
                                    }),
                                    inf,
                                    pc,
                                    arena,
                                ),
                                None => {
                                    slot.classify_into(anc_open.iter().copied(), inf, pc, arena)
                                }
                            }
                        }
                    }
                }
                // pairs unchanged: slots of expanded influence objects
                // reclassify their open children; the rest carry their
                // open list into the new generation verbatim
                RefreshMode::InPlace => {
                    if slot.open_len > 0 {
                        let cur_open = &old_arena[slot.open_range()];
                        match offsets {
                            Some(offsets) => {
                                let pc = pc.as_ref().expect("classifier built for rebuild modes");
                                slot.classify_into(
                                    cur_open.iter().flat_map(|&p| {
                                        offsets[p as usize]..offsets[p as usize + 1]
                                    }),
                                    inf,
                                    pc,
                                    arena,
                                )
                            }
                            None => {
                                let new_start = arena.len();
                                arena.extend_from_slice(cur_open);
                                assert!(
                                    arena.len() <= u32::MAX as usize,
                                    "open-list arena overflow"
                                );
                                slot.open_start = new_start as u32;
                            }
                        }
                    }
                }
                // nothing changed: cached bounds are current, the arena
                // generation stays as-is
                RefreshMode::Clean => {}
            }
            sink.factor(slot.bounds.lower, slot.bounds.upper);
        }
        sink.finish_pair(w, k_eff, n_inf);
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)]
mod tests {
    use super::*;
    use udb_geometry::{Interval, Point, Rect};
    use udb_pdf::Pdf;

    fn certain(x: f64) -> UncertainObject {
        UncertainObject::certain(Point::from([x, 0.0]))
    }

    fn uniform_seg(lo: f64, hi: f64) -> UncertainObject {
        UncertainObject::new(Pdf::uniform(Rect::new(vec![
            Interval::new(lo, hi),
            Interval::point(0.0),
        ])))
    }

    #[test]
    fn certain_world_is_exact_at_iteration_zero() {
        // R at 0; dominators at 1 and 2; target at 3; dominated at 4
        let db =
            Database::from_objects(vec![certain(1.0), certain(2.0), certain(3.0), certain(4.0)]);
        let r = certain(0.0);
        let mut refiner = Refiner::new(
            &db,
            ObjRef::Db(ObjectId(2)),
            ObjRef::External(&r),
            IdcaConfig::default(),
            Predicate::FullPdf,
        );
        assert_eq!(refiner.complete_count(), 2);
        assert_eq!(refiner.influence_ids().len(), 0);
        let snap = refiner.run();
        assert_eq!(snap.iteration, 0);
        assert!((snap.bounds.lower(2) - 1.0).abs() < 1e-12);
        assert!((snap.bounds.upper(2) - 1.0).abs() < 1e-12);
        assert_eq!(snap.uncertainty(), 0.0);
    }

    #[test]
    fn figure3_dependency_resolved_correctly() {
        // Example 1 / Figure 3: two coincident certain dominator
        // candidates, PDom = 1/2 each, fully correlated through R. The
        // correct count PDF is {0: 1/2, 1: 0, 2: 1/2}; a naive product
        // would claim P(count = 2) = 1/4.
        let db = Database::from_objects(vec![certain(2.0), certain(2.0), certain(0.0)]);
        let r = uniform_seg(0.0, 2.0);
        let cfg = IdcaConfig {
            max_iterations: 10,
            uncertainty_target: 0.02,
            ..Default::default()
        };
        let mut refiner = Refiner::new(
            &db,
            ObjRef::Db(ObjectId(2)),
            ObjRef::External(&r),
            cfg,
            Predicate::FullPdf,
        );
        assert_eq!(refiner.influence_ids().len(), 2);
        let snap = refiner.run();
        // bounds must bracket the truth {0.5, 0, 0.5}
        assert!(snap.bounds.lower(0) <= 0.5 + 1e-9 && snap.bounds.upper(0) >= 0.5 - 1e-9);
        assert!(snap.bounds.lower(2) <= 0.5 + 1e-9 && snap.bounds.upper(2) >= 0.5 - 1e-9);
        assert!(snap.bounds.lower(1) <= 1e-9);
        // and converge near them: P(count = 2) must stay well above the
        // naive 1/4 and P(count = 1) well below the naive 1/2
        assert!(
            snap.bounds.lower(2) > 0.4,
            "lower(2) = {} — dependency was lost",
            snap.bounds.lower(2)
        );
        assert!(
            snap.bounds.upper(1) < 0.1,
            "upper(1) = {} — dependency was lost",
            snap.bounds.upper(1)
        );
    }

    #[test]
    fn uncertainty_is_monotone_in_iterations() {
        let db = Database::from_objects(vec![
            uniform_seg(0.5, 2.5),
            uniform_seg(1.0, 3.0),
            uniform_seg(2.0, 4.0),
            certain(2.0),
        ]);
        let r = uniform_seg(-0.5, 0.5);
        let mut refiner = Refiner::new(
            &db,
            ObjRef::Db(ObjectId(3)),
            ObjRef::External(&r),
            IdcaConfig {
                max_iterations: 7,
                uncertainty_target: 0.0,
                ..Default::default()
            },
            Predicate::FullPdf,
        );
        let mut prev = refiner.snapshot().uncertainty();
        while refiner.step() {
            let cur = refiner.snapshot().uncertainty();
            assert!(
                cur <= prev + 1e-9,
                "uncertainty increased: {prev} -> {cur} at iteration {}",
                refiner.iteration()
            );
            prev = cur;
            if refiner.iteration() >= 7 {
                break;
            }
        }
        assert!(prev < 1.0, "refinement should reduce uncertainty: {prev}");
    }

    /// The cache-consistency property of the tentpole: at every iteration
    /// the incremental snapshot must equal the from-scratch recompute.
    #[test]
    fn incremental_snapshot_matches_from_scratch_every_iteration() {
        let db = Database::from_objects(vec![
            uniform_seg(0.5, 2.5),
            uniform_seg(1.0, 3.0),
            uniform_seg(2.0, 4.0),
            uniform_seg(1.8, 2.6),
            certain(2.0),
            UncertainObject::with_existence(
                Pdf::uniform(Rect::new(vec![
                    Interval::new(0.2, 1.4),
                    Interval::point(0.0),
                ])),
                0.7,
            ),
        ]);
        let r = uniform_seg(-0.5, 0.5);
        for predicate in [
            Predicate::FullPdf,
            Predicate::CountBelow { k: 2 },
            Predicate::Threshold { k: 3, tau: 0.5 },
        ] {
            let mut refiner = Refiner::new(
                &db,
                ObjRef::Db(ObjectId(4)),
                ObjRef::External(&r),
                IdcaConfig {
                    max_iterations: 6,
                    uncertainty_target: 0.0,
                    ..Default::default()
                },
                predicate,
            );
            for iteration in 0..6 {
                let inc = refiner.snapshot();
                let scratch = refiner.snapshot_from_scratch();
                assert_eq!(inc.bounds.len(), scratch.bounds.len());
                for k in 0..inc.bounds.len() {
                    assert!(
                        (inc.bounds.lower(k) - scratch.bounds.lower(k)).abs() < 1e-12,
                        "{predicate:?} it={iteration} lower k={k}: {} vs {}",
                        inc.bounds.lower(k),
                        scratch.bounds.lower(k)
                    );
                    assert!(
                        (inc.bounds.upper(k) - scratch.bounds.upper(k)).abs() < 1e-12,
                        "{predicate:?} it={iteration} upper k={k}: {} vs {}",
                        inc.bounds.upper(k),
                        scratch.bounds.upper(k)
                    );
                }
                match (inc.predicate_cdf, scratch.predicate_cdf) {
                    (Some((il, ih)), Some((sl, sh))) => {
                        assert!(
                            (il - sl).abs() < 1e-12,
                            "{predicate:?} it={iteration} cdf lo"
                        );
                        assert!(
                            (ih - sh).abs() < 1e-12,
                            "{predicate:?} it={iteration} cdf hi"
                        );
                    }
                    (None, None) => {}
                    other => panic!("cdf presence mismatch: {other:?}"),
                }
                if !refiner.step() {
                    break;
                }
            }
        }
    }

    /// Parallel snapshots agree with sequential ones (up to float
    /// reassociation across chunk boundaries).
    #[test]
    fn parallel_snapshot_matches_sequential() {
        let db = Database::from_objects(vec![
            uniform_seg(0.5, 2.5),
            uniform_seg(1.0, 3.0),
            uniform_seg(2.0, 4.0),
            uniform_seg(1.8, 2.6),
            certain(2.0),
        ]);
        let r = uniform_seg(-0.5, 0.5);
        let mk = |threads| {
            Refiner::new(
                &db,
                ObjRef::Db(ObjectId(4)),
                ObjRef::External(&r),
                IdcaConfig {
                    max_iterations: 5,
                    uncertainty_target: 0.0,
                    snapshot_threads: threads,
                    ..Default::default()
                },
                Predicate::FullPdf,
            )
        };
        let mut seq = mk(1);
        for threads in [2usize, 4, 16] {
            let mut par = mk(threads);
            loop {
                let a = seq.snapshot();
                let b = par.snapshot();
                for k in 0..a.bounds.len() {
                    assert!(
                        (a.bounds.lower(k) - b.bounds.lower(k)).abs() < 1e-12,
                        "threads={threads} lower k={k}"
                    );
                    assert!(
                        (a.bounds.upper(k) - b.bounds.upper(k)).abs() < 1e-12,
                        "threads={threads} upper k={k}"
                    );
                }
                let (sp, pp) = (seq.step(), par.step());
                assert_eq!(sp, pp);
                if !sp || seq.iteration() > 5 {
                    break;
                }
            }
            // rewind the sequential refiner for the next comparison
            seq = mk(1);
        }
    }

    /// Every cache slot — freshly computed, skipped, or carried across a
    /// B/R expansion — must agree with a fresh classification against the
    /// current partitions (robust decisions are stable under refinement).
    #[test]
    fn cache_entries_match_fresh_classification() {
        let db = Database::from_objects(vec![
            uniform_seg(0.5, 2.5),
            uniform_seg(1.0, 3.0),
            uniform_seg(2.0, 4.0),
            uniform_seg(1.8, 2.6),
            certain(2.0),
            UncertainObject::with_existence(
                Pdf::uniform(Rect::new(vec![
                    Interval::new(0.2, 1.4),
                    Interval::point(0.0),
                ])),
                0.7,
            ),
        ]);
        let r = uniform_seg(-0.5, 0.5);
        let mut refiner = Refiner::new(
            &db,
            ObjRef::Db(ObjectId(4)),
            ObjRef::External(&r),
            IdcaConfig {
                max_iterations: 6,
                uncertainty_target: 0.0,
                ..Default::default()
            },
            Predicate::FullPdf,
        );
        for iteration in 0..6 {
            let _ = refiner.snapshot();
            // after snapshot: verify every cache slot against a fresh classification
            let n_inf = refiner.influence.len();
            let r_len = refiner.r_parts.len();
            for (pair_idx, chunk) in refiner.cache.chunks(n_inf).enumerate() {
                let bp = &refiner.b_parts[pair_idx / r_len];
                let rp = &refiner.r_parts[pair_idx % r_len];
                if bp.mass * rp.mass <= 0.0 {
                    continue;
                }
                for (inf, slot) in refiner.influence.iter().zip(chunk.iter()) {
                    let fresh = pdom_bounds_vs_fixed(
                        &inf.parts,
                        &bp.mbr,
                        &rp.mbr,
                        refiner.cfg.norm,
                        refiner.cfg.criterion,
                    )
                    .scale_by_existence(inf.existence);
                    let dl = (slot.bounds.lower - fresh.lower).abs();
                    let du = (slot.bounds.upper - fresh.upper).abs();
                    assert!(
                        dl <= 1e-9 && du <= 1e-9,
                        "it={iteration} pair={pair_idx} inf={:?}: cached {:?} vs fresh {:?}",
                        inf.id,
                        slot,
                        fresh
                    );
                }
            }
            if !refiner.step() {
                break;
            }
        }
    }

    /// Structural invariants of the open-list arena: every slot range is
    /// in-bounds, ranges of a generation are disjoint and ordered in
    /// slot-processing order, and indexed partitions exist.
    #[test]
    fn open_list_arena_invariants_hold_every_iteration() {
        let db = Database::from_objects(vec![
            uniform_seg(0.5, 2.5),
            uniform_seg(1.0, 3.0),
            uniform_seg(2.0, 4.0),
            uniform_seg(1.8, 2.6),
            certain(2.0),
        ]);
        let r = uniform_seg(-0.5, 0.5);
        let mut refiner = Refiner::new(
            &db,
            ObjRef::Db(ObjectId(4)),
            ObjRef::External(&r),
            IdcaConfig {
                max_iterations: 6,
                uncertainty_target: 0.0,
                ..Default::default()
            },
            Predicate::FullPdf,
        );
        for _ in 0..6 {
            let _ = refiner.snapshot();
            let mut cursor = 0usize;
            for (slot_idx, slot) in refiner.cache.iter().enumerate() {
                if slot.open_len == 0 {
                    continue;
                }
                let range = slot.open_range();
                assert!(
                    range.end <= refiner.open_arena.len(),
                    "slot {slot_idx} dangles"
                );
                assert!(
                    range.start >= cursor,
                    "slot {slot_idx} overlaps its predecessor"
                );
                cursor = range.end;
                let inf = &refiner.influence[slot_idx % refiner.influence.len()];
                for &p in &refiner.open_arena[range] {
                    assert!((p as usize) < inf.parts.len(), "stale partition index");
                }
            }
            // the generation is compact: nothing beyond the last range
            assert!(cursor <= refiner.open_arena.len());
            if !refiner.step() {
                break;
            }
        }
    }

    /// The lock-step driver must reproduce per-candidate `run()` results
    /// exactly while actually retiring candidates at different rounds.
    #[test]
    fn lockstep_driver_matches_individual_runs() {
        let db = Database::from_objects(vec![
            uniform_seg(0.5, 2.0),
            uniform_seg(1.0, 3.0),
            uniform_seg(2.0, 4.0),
            uniform_seg(1.8, 2.6),
            certain(2.5),
        ]);
        let r = uniform_seg(-0.5, 0.5);
        let cfg = IdcaConfig {
            max_iterations: 6,
            uncertainty_target: 0.0,
            ..Default::default()
        };
        let goal = RefineGoal::threshold(2, 0.5);
        let ids: Vec<ObjectId> = db.ids().collect();
        let mk = |id: ObjectId| {
            Refiner::new(
                &db,
                ObjRef::Db(id),
                ObjRef::External(&r),
                cfg.clone(),
                goal.predicate(),
            )
        };
        let lockstep = refine_lockstep(ids.iter().map(|&id| (id, mk(id))).collect(), goal);
        let mut individual: Vec<ThresholdResult> = ids
            .iter()
            .filter_map(|&id| {
                let mut refiner = mk(id);
                let snap = refiner.run();
                threshold_result(id, &snap)
            })
            .collect();
        individual.sort_by_key(|x| x.id);
        assert_eq!(lockstep.len(), individual.len());
        for (a, b) in lockstep.iter().zip(individual.iter()) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.prob_lower, b.prob_lower);
            assert_eq!(a.prob_upper, b.prob_upper);
            assert_eq!(a.iterations, b.iterations);
        }
        // the early exit is real: decided candidates stop at different
        // iteration depths instead of all burning max_iterations
        assert!(
            lockstep.iter().any(|x| x.iterations < 6),
            "no candidate retired early: {lockstep:?}"
        );
    }

    #[test]
    fn predicate_filter_decides_immediately() {
        // two certain dominators and k = 1: P(DomCount < 1) = 0 after the
        // filter step alone
        let db = Database::from_objects(vec![certain(1.0), certain(2.0), certain(5.0)]);
        let r = certain(0.0);
        let mut refiner = Refiner::new(
            &db,
            ObjRef::Db(ObjectId(2)),
            ObjRef::External(&r),
            IdcaConfig::default(),
            Predicate::Threshold { k: 1, tau: 0.5 },
        );
        let snap = refiner.run();
        assert_eq!(snap.iteration, 0);
        assert_eq!(snap.predicate_cdf, Some((0.0, 0.0)));
        assert_eq!(snap.decided(0.5), Some(false));
    }

    #[test]
    fn predicate_k_beyond_influence_is_certain_hit() {
        // no dominators at all and k = 2: P(DomCount < 2) = 1
        let db = Database::from_objects(vec![certain(5.0), certain(1.0)]);
        let r = certain(0.0);
        let mut refiner = Refiner::new(
            &db,
            ObjRef::Db(ObjectId(1)),
            ObjRef::External(&r),
            IdcaConfig::default(),
            Predicate::Threshold { k: 2, tau: 0.9 },
        );
        let snap = refiner.run();
        let (lo, hi) = snap.predicate_cdf.unwrap();
        assert!((lo - 1.0).abs() < 1e-12);
        assert!((hi - 1.0).abs() < 1e-12);
        assert_eq!(snap.decided(0.9), Some(true));
    }

    #[test]
    fn threshold_early_termination() {
        // one influence object with a clear decision: refiner should stop
        // before max_iterations
        let db = Database::from_objects(vec![uniform_seg(0.8, 1.2), certain(3.0)]);
        let r = certain(0.0);
        let mut refiner = Refiner::new(
            &db,
            ObjRef::Db(ObjectId(1)),
            ObjRef::External(&r),
            IdcaConfig {
                max_iterations: 20,
                uncertainty_target: 0.0,
                ..Default::default()
            },
            Predicate::Threshold { k: 2, tau: 0.5 },
        );
        let snap = refiner.run();
        // A surely dominates (its region [0.8, 1.2] is closer to 0 than 3
        // in every world): DomCount = 1 surely, P(< 2) = 1 > 0.5
        assert_eq!(snap.decided(0.5), Some(true));
        assert!(snap.iteration <= 2, "iteration {}", snap.iteration);
    }

    #[test]
    fn reference_object_from_database_is_excluded() {
        // reference is a DB object: it must not count toward domination
        let db = Database::from_objects(vec![certain(0.0), certain(1.0), certain(3.0)]);
        let mut refiner = Refiner::new(
            &db,
            ObjRef::Db(ObjectId(2)),
            ObjRef::Db(ObjectId(0)),
            IdcaConfig::default(),
            Predicate::FullPdf,
        );
        let snap = refiner.run();
        // only object 1 dominates object 2 w.r.t. object 0
        assert!((snap.bounds.lower(1) - 1.0).abs() < 1e-12);
        assert_eq!(snap.complete_count, 1);
    }

    #[test]
    fn bounds_bracket_world_sampler() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let db = Database::from_objects(vec![
            uniform_seg(0.5, 2.0),
            uniform_seg(1.5, 3.5),
            uniform_seg(2.5, 4.5),
            uniform_seg(1.8, 2.6),
        ]);
        let r = uniform_seg(-0.5, 0.5);
        let mut refiner = Refiner::new(
            &db,
            ObjRef::Db(ObjectId(3)),
            ObjRef::External(&r),
            IdcaConfig {
                max_iterations: 6,
                uncertainty_target: 0.0,
                ..Default::default()
            },
            Predicate::FullPdf,
        );
        let snap = refiner.run();
        let mut rng = StdRng::seed_from_u64(99);
        let truth = udb_mc::estimate_domination_count_pdf(
            &db,
            ObjectId(3),
            &r,
            udb_geometry::LpNorm::L2,
            20_000,
            &mut rng,
        );
        for k in 0..snap.bounds.len() {
            assert!(
                truth[k] >= snap.bounds.lower(k) - 0.02,
                "k={k}: truth {} < lower {}",
                truth[k],
                snap.bounds.lower(k)
            );
            assert!(
                truth[k] <= snap.bounds.upper(k) + 0.02,
                "k={k}: truth {} > upper {}",
                truth[k],
                snap.bounds.upper(k)
            );
        }
    }

    #[test]
    fn existential_uncertainty_scales_bounds() {
        // a certain dominator that exists with probability 0.5: the count
        // must be 0 or 1 with probability 1/2 each, and the refiner's
        // bounds must converge to exactly that (the UGF factor becomes
        // [0.5, 0.5] after the spatial relation is decided)
        let dominator = UncertainObject::with_existence(
            Pdf::uniform(Rect::from_point(&Point::from([1.0, 0.0]))),
            0.5,
        );
        let db = Database::from_objects(vec![dominator, certain(3.0)]);
        let r = certain(0.0);
        let mut refiner = Refiner::new(
            &db,
            ObjRef::Db(ObjectId(1)),
            ObjRef::External(&r),
            IdcaConfig::default(),
            Predicate::FullPdf,
        );
        // existential objects are never "complete" dominators
        assert_eq!(refiner.complete_count(), 0);
        assert_eq!(
            refiner.influence_ids().collect::<Vec<_>>(),
            vec![ObjectId(0)]
        );
        let snap = refiner.run();
        assert!(
            (snap.bounds.lower(0) - 0.5).abs() < 1e-9,
            "{:?}",
            snap.bounds
        );
        assert!((snap.bounds.upper(0) - 0.5).abs() < 1e-9);
        assert!((snap.bounds.lower(1) - 0.5).abs() < 1e-9);
        assert!((snap.bounds.upper(1) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn existential_uncertainty_brackets_world_sampler() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let db = Database::from_objects(vec![
            UncertainObject::with_existence(
                Pdf::uniform(Rect::new(vec![
                    Interval::new(0.5, 1.5),
                    Interval::point(0.0),
                ])),
                0.7,
            ),
            uniform_seg(1.0, 3.0),
            certain(2.5),
        ]);
        let r = uniform_seg(-0.5, 0.5);
        let mut refiner = Refiner::new(
            &db,
            ObjRef::Db(ObjectId(2)),
            ObjRef::External(&r),
            IdcaConfig {
                max_iterations: 6,
                uncertainty_target: 0.0,
                ..Default::default()
            },
            Predicate::FullPdf,
        );
        let snap = refiner.run();
        let mut rng = StdRng::seed_from_u64(2024);
        let truth = udb_mc::estimate_domination_count_pdf(
            &db,
            ObjectId(2),
            &r,
            udb_geometry::LpNorm::L2,
            30_000,
            &mut rng,
        );
        for k in 0..snap.bounds.len() {
            assert!(truth[k] >= snap.bounds.lower(k) - 0.02, "k={k}");
            assert!(truth[k] <= snap.bounds.upper(k) + 0.02, "k={k}");
        }
    }

    #[test]
    fn truncated_predicate_matches_full_pdf_cdf() {
        let db = Database::from_objects(vec![
            uniform_seg(0.5, 2.0),
            uniform_seg(1.0, 3.0),
            uniform_seg(2.0, 4.0),
            certain(2.5),
        ]);
        let r = uniform_seg(-0.5, 0.5);
        let k = 2;
        let mk = |pred| {
            Refiner::new(
                &db,
                ObjRef::Db(ObjectId(3)),
                ObjRef::External(&r),
                IdcaConfig {
                    max_iterations: 4,
                    uncertainty_target: 0.0,
                    ..Default::default()
                },
                pred,
            )
        };
        let mut full = mk(Predicate::FullPdf);
        let mut trunc = mk(Predicate::CountBelow { k });
        for _ in 0..4 {
            full.step();
            trunc.step();
        }
        let fs = full.snapshot();
        let ts = trunc.snapshot();
        let (tlo, thi) = ts.predicate_cdf.unwrap();
        let (flo, fhi) = fs.bounds.cdf_bounds(k);
        // the truncated direct CDF bounds must be at least as tight as the
        // ones recovered from the full per-k bounds, and consistent
        assert!(tlo >= flo - 1e-9, "tlo {tlo} flo {flo}");
        assert!(thi <= fhi + 1e-9, "thi {thi} fhi {fhi}");
        assert!(tlo <= thi);
    }
}
