//! The iterative domination-count refiner (Algorithm 1 of the paper).

use udb_domination::{pdom_bounds_vs_fixed, PDomBounds};
use udb_genfunc::{CountDistributionBounds, Ugf};
use udb_object::{Database, Decomposition, ObjectId, Partition, UncertainObject};

use crate::config::{IdcaConfig, ObjRef, Predicate};

/// One influence object: its id, existence probability and current
/// decomposition state.
struct Influence {
    id: ObjectId,
    existence: f64,
    dec: Decomposition,
    parts: Vec<Partition>,
}

/// The bounds state after an IDCA iteration.
#[derive(Debug, Clone)]
pub struct DomCountSnapshot {
    /// Bounds on `P(DomCount = k)` over the *total* count (already shifted
    /// by the complete-domination count). Under a truncating predicate the
    /// vector covers only the counts the predicate needs.
    pub bounds: CountDistributionBounds,
    /// Bounds on `P(DomCount < k)` when the predicate fixes a `k`.
    pub predicate_cdf: Option<(f64, f64)>,
    /// Number of objects that certainly dominate the target.
    pub complete_count: usize,
    /// Number of influence objects.
    pub influence_count: usize,
    /// Iterations of refinement performed (0 = filter only).
    pub iteration: usize,
}

impl DomCountSnapshot {
    /// The paper's accumulated uncertainty
    /// `Σ_k (DomCountUB_k − DomCountLB_k)`.
    pub fn uncertainty(&self) -> f64 {
        self.bounds.uncertainty()
    }

    /// For a threshold predicate: `Some(true)` once
    /// `P(DomCount < k) > τ` is certain, `Some(false)` once it is certainly
    /// `≤ τ`, `None` while undecided.
    pub fn decided(&self, tau: f64) -> Option<bool> {
        let (lo, hi) = self.predicate_cdf?;
        if lo > tau {
            Some(true)
        } else if hi <= tau {
            Some(false)
        } else {
            None
        }
    }
}

/// Iteratively refines the domination count of a target object w.r.t. a
/// reference object over a database (Algorithm 1).
///
/// ```
/// use udb_core::{IdcaConfig, ObjRef, Predicate, Refiner};
/// use udb_geometry::Point;
/// use udb_object::{Database, ObjectId, UncertainObject};
///
/// // reference at 0, a certain dominator at 1, the target at 2
/// let db = Database::from_objects(vec![
///     UncertainObject::certain(Point::from([1.0, 0.0])),
///     UncertainObject::certain(Point::from([2.0, 0.0])),
/// ]);
/// let q = UncertainObject::certain(Point::from([0.0, 0.0]));
/// let mut refiner = Refiner::new(
///     &db,
///     ObjRef::Db(ObjectId(1)),
///     ObjRef::External(&q),
///     IdcaConfig::default(),
///     Predicate::FullPdf,
/// );
/// let snapshot = refiner.run();
/// // exactly one object dominates the target in every world
/// assert_eq!(snapshot.bounds.lower(1), 1.0);
/// ```
pub struct Refiner<'a> {
    db: &'a Database,
    cfg: IdcaConfig,
    predicate: Predicate,
    target: &'a UncertainObject,
    reference: &'a UncertainObject,
    complete_count: usize,
    influence: Vec<Influence>,
    b_dec: Decomposition,
    b_parts: Vec<Partition>,
    r_dec: Decomposition,
    r_parts: Vec<Partition>,
    iteration: usize,
}

impl<'a> Refiner<'a> {
    /// Runs the complete-domination filter (lines 3–10 of Algorithm 1) and
    /// prepares the refinement state.
    pub fn new(
        db: &'a Database,
        target: ObjRef<'a>,
        reference: ObjRef<'a>,
        cfg: IdcaConfig,
        predicate: Predicate,
    ) -> Self {
        let target_obj = target.resolve(db);
        let reference_obj = reference.resolve(db);
        let excluded = [target.id(), reference.id()];

        let mut complete_count = 0usize;
        let mut influence = Vec::new();
        for (id, a) in db.iter() {
            if excluded.contains(&Some(id)) {
                continue;
            }
            // certainly never dominates the target: no influence on the
            // count (weak test — ties count as non-domination because Dom
            // is strict)
            if cfg
                .criterion
                .never_dominates(a.mbr(), target_obj.mbr(), reference_obj.mbr(), cfg.norm)
            {
                continue;
            }
            // certain dominator (only if it certainly exists)
            if a.existence() >= 1.0
                && cfg
                    .criterion
                    .dominates(a.mbr(), target_obj.mbr(), reference_obj.mbr(), cfg.norm)
            {
                complete_count += 1;
                continue;
            }
            let dec = Decomposition::with_strategy(a.pdf(), cfg.split_strategy);
            let parts = dec.partitions();
            influence.push(Influence {
                id,
                existence: a.existence(),
                dec,
                parts,
            });
        }

        let b_dec = Decomposition::with_strategy(target_obj.pdf(), cfg.split_strategy);
        let b_parts = b_dec.partitions();
        let r_dec = Decomposition::with_strategy(reference_obj.pdf(), cfg.split_strategy);
        let r_parts = r_dec.partitions();

        Refiner {
            db,
            cfg,
            predicate,
            target: target_obj,
            reference: reference_obj,
            complete_count,
            influence,
            b_dec,
            b_parts,
            r_dec,
            r_parts,
            iteration: 0,
        }
    }

    /// Builds a refiner from a *precomputed* filter result: `complete_count`
    /// certain dominators and `influence_ids` undecided objects. The caller
    /// is responsible for soundness of the classification (used by the
    /// index-accelerated filter, whose subtree tests apply the same
    /// criterion as [`Refiner::new`]).
    pub fn with_filter_result(
        db: &'a Database,
        target: ObjRef<'a>,
        reference: ObjRef<'a>,
        cfg: IdcaConfig,
        predicate: Predicate,
        complete_count: usize,
        influence_ids: Vec<ObjectId>,
    ) -> Self {
        let target_obj = target.resolve(db);
        let reference_obj = reference.resolve(db);
        let influence = influence_ids
            .into_iter()
            .map(|id| {
                let a = db.get(id);
                let dec = Decomposition::with_strategy(a.pdf(), cfg.split_strategy);
                let parts = dec.partitions();
                Influence {
                    id,
                    existence: a.existence(),
                    dec,
                    parts,
                }
            })
            .collect();
        let b_dec = Decomposition::with_strategy(target_obj.pdf(), cfg.split_strategy);
        let b_parts = b_dec.partitions();
        let r_dec = Decomposition::with_strategy(reference_obj.pdf(), cfg.split_strategy);
        let r_parts = r_dec.partitions();
        Refiner {
            db,
            cfg,
            predicate,
            target: target_obj,
            reference: reference_obj,
            complete_count,
            influence,
            b_dec,
            b_parts,
            r_dec,
            r_parts,
            iteration: 0,
        }
    }

    /// The database this refiner runs against.
    pub fn db(&self) -> &Database {
        self.db
    }

    /// Number of certain dominators found by the filter step.
    pub fn complete_count(&self) -> usize {
        self.complete_count
    }

    /// Ids of the influence objects (the `influenceObjects` set of
    /// Algorithm 1).
    pub fn influence_ids(&self) -> Vec<ObjectId> {
        self.influence.iter().map(|i| i.id).collect()
    }

    /// Iterations performed so far.
    pub fn iteration(&self) -> usize {
        self.iteration
    }

    /// Effective truncation for the UGFs: the predicate's `k` minus the
    /// certain dominators. `Some(0)` means the predicate is already
    /// decided negatively by the filter alone.
    fn effective_k(&self) -> Option<usize> {
        self.predicate
            .k()
            .map(|k| k.saturating_sub(self.complete_count))
    }

    /// One refinement iteration (lines 15 of Algorithm 1): deepens every
    /// decomposition by one level. Returns `false` when nothing could be
    /// split further (exact bounds reached for discrete models).
    pub fn step(&mut self) -> bool {
        let mut progress = false;
        if self.b_dec.expand(self.target.pdf()) {
            self.b_parts = self.b_dec.partitions();
            progress = true;
        }
        if self.r_dec.expand(self.reference.pdf()) {
            self.r_parts = self.r_dec.partitions();
            progress = true;
        }
        for inf in &mut self.influence {
            if inf.dec.expand(self.db.get(inf.id).pdf()) {
                inf.parts = inf.dec.partitions();
                progress = true;
            }
        }
        if progress {
            self.iteration += 1;
        }
        progress
    }

    /// Evaluates the current bounds (lines 16–36 of Algorithm 1): one UGF
    /// per partition pair `(B', R')`, aggregated by pair probability and
    /// shifted by the complete-domination count.
    pub fn snapshot(&self) -> DomCountSnapshot {
        let n_inf = self.influence.len();
        let k_eff = self.effective_k();

        // predicate already decided negatively by the filter?
        if k_eff == Some(0) {
            let mut bounds = CountDistributionBounds::zero(0);
            bounds.shift_right(self.complete_count);
            return DomCountSnapshot {
                bounds,
                predicate_cdf: Some((0.0, 0.0)),
                complete_count: self.complete_count,
                influence_count: n_inf,
                iteration: self.iteration,
            };
        }

        let len = match k_eff {
            Some(k) => (n_inf + 1).min(k),
            None => n_inf + 1,
        };
        let truncate = k_eff;

        let mut agg = CountDistributionBounds::zero(len);
        let mut cdf_acc = k_eff.map(|_| (0.0f64, 0.0f64));

        for bp in &self.b_parts {
            for rp in &self.r_parts {
                let w = bp.mass * rp.mass;
                if w <= 0.0 {
                    continue;
                }
                let mut ugf = Ugf::new(truncate);
                for inf in &self.influence {
                    let PDomBounds { lower, upper } = pdom_bounds_vs_fixed(
                        &inf.parts,
                        &bp.mbr,
                        &rp.mbr,
                        self.cfg.norm,
                        self.cfg.criterion,
                    )
                    .scale_by_existence(inf.existence);
                    ugf.multiply(lower, upper);
                }
                agg.add_weighted(&ugf.count_bounds(len), w);
                if let (Some(k), Some(acc)) = (k_eff, cdf_acc.as_mut()) {
                    let (lo, hi) = ugf.cdf_bounds(k.min(n_inf + 1));
                    // counts can never reach k when k > n_inf: cdf = 1
                    let (lo, hi) = if k > n_inf { (1.0, 1.0) } else { (lo, hi) };
                    acc.0 += w * lo;
                    acc.1 += w * hi;
                }
            }
        }
        agg.normalize();
        agg.shift_right(self.complete_count);

        DomCountSnapshot {
            bounds: agg,
            predicate_cdf: cdf_acc.map(|(lo, hi)| (lo.clamp(0.0, 1.0), hi.clamp(0.0, 1.0))),
            complete_count: self.complete_count,
            influence_count: n_inf,
            iteration: self.iteration,
        }
    }

    /// Whether the stop criterion of Algorithm 1 is met for `snap`.
    fn should_stop(&self, snap: &DomCountSnapshot) -> bool {
        if self.iteration >= self.cfg.max_iterations {
            return true;
        }
        if let Predicate::Threshold { tau, .. } = self.predicate {
            if snap.decided(tau).is_some() {
                return true;
            }
        }
        snap.uncertainty() <= self.cfg.uncertainty_target
    }

    /// Runs filter + iterations until the stop criterion fires; returns
    /// the final snapshot.
    pub fn run(&mut self) -> DomCountSnapshot {
        let mut snap = self.snapshot();
        while !self.should_stop(&snap) {
            if !self.step() {
                break; // decompositions exhausted: bounds are final
            }
            snap = self.snapshot();
        }
        snap
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)]
mod tests {
    use super::*;
    use udb_geometry::{Interval, Point, Rect};
    use udb_pdf::Pdf;

    fn certain(x: f64) -> UncertainObject {
        UncertainObject::certain(Point::from([x, 0.0]))
    }

    fn uniform_seg(lo: f64, hi: f64) -> UncertainObject {
        UncertainObject::new(Pdf::uniform(Rect::new(vec![
            Interval::new(lo, hi),
            Interval::point(0.0),
        ])))
    }

    #[test]
    fn certain_world_is_exact_at_iteration_zero() {
        // R at 0; dominators at 1 and 2; target at 3; dominated at 4
        let db = Database::from_objects(vec![
            certain(1.0),
            certain(2.0),
            certain(3.0),
            certain(4.0),
        ]);
        let r = certain(0.0);
        let mut refiner = Refiner::new(
            &db,
            ObjRef::Db(ObjectId(2)),
            ObjRef::External(&r),
            IdcaConfig::default(),
            Predicate::FullPdf,
        );
        assert_eq!(refiner.complete_count(), 2);
        assert!(refiner.influence_ids().is_empty());
        let snap = refiner.run();
        assert_eq!(snap.iteration, 0);
        assert!((snap.bounds.lower(2) - 1.0).abs() < 1e-12);
        assert!((snap.bounds.upper(2) - 1.0).abs() < 1e-12);
        assert_eq!(snap.uncertainty(), 0.0);
    }

    #[test]
    fn figure3_dependency_resolved_correctly() {
        // Example 1 / Figure 3: two coincident certain dominator
        // candidates, PDom = 1/2 each, fully correlated through R. The
        // correct count PDF is {0: 1/2, 1: 0, 2: 1/2}; a naive product
        // would claim P(count = 2) = 1/4.
        let db = Database::from_objects(vec![certain(2.0), certain(2.0), certain(0.0)]);
        let r = uniform_seg(0.0, 2.0);
        let cfg = IdcaConfig {
            max_iterations: 10,
            uncertainty_target: 0.02,
            ..Default::default()
        };
        let mut refiner = Refiner::new(
            &db,
            ObjRef::Db(ObjectId(2)),
            ObjRef::External(&r),
            cfg,
            Predicate::FullPdf,
        );
        assert_eq!(refiner.influence_ids().len(), 2);
        let snap = refiner.run();
        // bounds must bracket the truth {0.5, 0, 0.5}
        assert!(snap.bounds.lower(0) <= 0.5 + 1e-9 && snap.bounds.upper(0) >= 0.5 - 1e-9);
        assert!(snap.bounds.lower(2) <= 0.5 + 1e-9 && snap.bounds.upper(2) >= 0.5 - 1e-9);
        assert!(snap.bounds.lower(1) <= 1e-9);
        // and converge near them: P(count = 2) must stay well above the
        // naive 1/4 and P(count = 1) well below the naive 1/2
        assert!(
            snap.bounds.lower(2) > 0.4,
            "lower(2) = {} — dependency was lost",
            snap.bounds.lower(2)
        );
        assert!(
            snap.bounds.upper(1) < 0.1,
            "upper(1) = {} — dependency was lost",
            snap.bounds.upper(1)
        );
    }

    #[test]
    fn uncertainty_is_monotone_in_iterations() {
        let db = Database::from_objects(vec![
            uniform_seg(0.5, 2.5),
            uniform_seg(1.0, 3.0),
            uniform_seg(2.0, 4.0),
            certain(2.0),
        ]);
        let r = uniform_seg(-0.5, 0.5);
        let mut refiner = Refiner::new(
            &db,
            ObjRef::Db(ObjectId(3)),
            ObjRef::External(&r),
            IdcaConfig {
                max_iterations: 7,
                uncertainty_target: 0.0,
                ..Default::default()
            },
            Predicate::FullPdf,
        );
        let mut prev = refiner.snapshot().uncertainty();
        while refiner.step() {
            let cur = refiner.snapshot().uncertainty();
            assert!(
                cur <= prev + 1e-9,
                "uncertainty increased: {prev} -> {cur} at iteration {}",
                refiner.iteration()
            );
            prev = cur;
            if refiner.iteration() >= 7 {
                break;
            }
        }
        assert!(prev < 1.0, "refinement should reduce uncertainty: {prev}");
    }

    #[test]
    fn predicate_filter_decides_immediately() {
        // two certain dominators and k = 1: P(DomCount < 1) = 0 after the
        // filter step alone
        let db = Database::from_objects(vec![certain(1.0), certain(2.0), certain(5.0)]);
        let r = certain(0.0);
        let mut refiner = Refiner::new(
            &db,
            ObjRef::Db(ObjectId(2)),
            ObjRef::External(&r),
            IdcaConfig::default(),
            Predicate::Threshold { k: 1, tau: 0.5 },
        );
        let snap = refiner.run();
        assert_eq!(snap.iteration, 0);
        assert_eq!(snap.predicate_cdf, Some((0.0, 0.0)));
        assert_eq!(snap.decided(0.5), Some(false));
    }

    #[test]
    fn predicate_k_beyond_influence_is_certain_hit() {
        // no dominators at all and k = 2: P(DomCount < 2) = 1
        let db = Database::from_objects(vec![certain(5.0), certain(1.0)]);
        let r = certain(0.0);
        let mut refiner = Refiner::new(
            &db,
            ObjRef::Db(ObjectId(1)),
            ObjRef::External(&r),
            IdcaConfig::default(),
            Predicate::Threshold { k: 2, tau: 0.9 },
        );
        let snap = refiner.run();
        let (lo, hi) = snap.predicate_cdf.unwrap();
        assert!((lo - 1.0).abs() < 1e-12);
        assert!((hi - 1.0).abs() < 1e-12);
        assert_eq!(snap.decided(0.9), Some(true));
    }

    #[test]
    fn threshold_early_termination() {
        // one influence object with a clear decision: refiner should stop
        // before max_iterations
        let db = Database::from_objects(vec![uniform_seg(0.8, 1.2), certain(3.0)]);
        let r = certain(0.0);
        let mut refiner = Refiner::new(
            &db,
            ObjRef::Db(ObjectId(1)),
            ObjRef::External(&r),
            IdcaConfig {
                max_iterations: 20,
                uncertainty_target: 0.0,
                ..Default::default()
            },
            Predicate::Threshold { k: 2, tau: 0.5 },
        );
        let snap = refiner.run();
        // A surely dominates (its region [0.8, 1.2] is closer to 0 than 3
        // in every world): DomCount = 1 surely, P(< 2) = 1 > 0.5
        assert_eq!(snap.decided(0.5), Some(true));
        assert!(snap.iteration <= 2, "iteration {}", snap.iteration);
    }

    #[test]
    fn reference_object_from_database_is_excluded() {
        // reference is a DB object: it must not count toward domination
        let db = Database::from_objects(vec![certain(0.0), certain(1.0), certain(3.0)]);
        let mut refiner = Refiner::new(
            &db,
            ObjRef::Db(ObjectId(2)),
            ObjRef::Db(ObjectId(0)),
            IdcaConfig::default(),
            Predicate::FullPdf,
        );
        let snap = refiner.run();
        // only object 1 dominates object 2 w.r.t. object 0
        assert!((snap.bounds.lower(1) - 1.0).abs() < 1e-12);
        assert_eq!(snap.complete_count, 1);
    }

    #[test]
    fn bounds_bracket_world_sampler() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let db = Database::from_objects(vec![
            uniform_seg(0.5, 2.0),
            uniform_seg(1.5, 3.5),
            uniform_seg(2.5, 4.5),
            uniform_seg(1.8, 2.6),
        ]);
        let r = uniform_seg(-0.5, 0.5);
        let mut refiner = Refiner::new(
            &db,
            ObjRef::Db(ObjectId(3)),
            ObjRef::External(&r),
            IdcaConfig {
                max_iterations: 6,
                uncertainty_target: 0.0,
                ..Default::default()
            },
            Predicate::FullPdf,
        );
        let snap = refiner.run();
        let mut rng = StdRng::seed_from_u64(99);
        let truth = udb_mc::estimate_domination_count_pdf(
            &db,
            ObjectId(3),
            &r,
            udb_geometry::LpNorm::L2,
            20_000,
            &mut rng,
        );
        for k in 0..snap.bounds.len() {
            assert!(
                truth[k] >= snap.bounds.lower(k) - 0.02,
                "k={k}: truth {} < lower {}",
                truth[k],
                snap.bounds.lower(k)
            );
            assert!(
                truth[k] <= snap.bounds.upper(k) + 0.02,
                "k={k}: truth {} > upper {}",
                truth[k],
                snap.bounds.upper(k)
            );
        }
    }

    #[test]
    fn existential_uncertainty_scales_bounds() {
        // a certain dominator that exists with probability 0.5: the count
        // must be 0 or 1 with probability 1/2 each, and the refiner's
        // bounds must converge to exactly that (the UGF factor becomes
        // [0.5, 0.5] after the spatial relation is decided)
        let dominator = UncertainObject::with_existence(
            Pdf::uniform(Rect::from_point(&Point::from([1.0, 0.0]))),
            0.5,
        );
        let db = Database::from_objects(vec![dominator, certain(3.0)]);
        let r = certain(0.0);
        let mut refiner = Refiner::new(
            &db,
            ObjRef::Db(ObjectId(1)),
            ObjRef::External(&r),
            IdcaConfig::default(),
            Predicate::FullPdf,
        );
        // existential objects are never "complete" dominators
        assert_eq!(refiner.complete_count(), 0);
        assert_eq!(refiner.influence_ids(), vec![ObjectId(0)]);
        let snap = refiner.run();
        assert!((snap.bounds.lower(0) - 0.5).abs() < 1e-9, "{:?}", snap.bounds);
        assert!((snap.bounds.upper(0) - 0.5).abs() < 1e-9);
        assert!((snap.bounds.lower(1) - 0.5).abs() < 1e-9);
        assert!((snap.bounds.upper(1) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn existential_uncertainty_brackets_world_sampler() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let db = Database::from_objects(vec![
            UncertainObject::with_existence(
                Pdf::uniform(Rect::new(vec![
                    Interval::new(0.5, 1.5),
                    Interval::point(0.0),
                ])),
                0.7,
            ),
            uniform_seg(1.0, 3.0),
            certain(2.5),
        ]);
        let r = uniform_seg(-0.5, 0.5);
        let mut refiner = Refiner::new(
            &db,
            ObjRef::Db(ObjectId(2)),
            ObjRef::External(&r),
            IdcaConfig {
                max_iterations: 6,
                uncertainty_target: 0.0,
                ..Default::default()
            },
            Predicate::FullPdf,
        );
        let snap = refiner.run();
        let mut rng = StdRng::seed_from_u64(2024);
        let truth = udb_mc::estimate_domination_count_pdf(
            &db,
            ObjectId(2),
            &r,
            udb_geometry::LpNorm::L2,
            30_000,
            &mut rng,
        );
        for k in 0..snap.bounds.len() {
            assert!(truth[k] >= snap.bounds.lower(k) - 0.02, "k={k}");
            assert!(truth[k] <= snap.bounds.upper(k) + 0.02, "k={k}");
        }
    }

    #[test]
    fn truncated_predicate_matches_full_pdf_cdf() {
        let db = Database::from_objects(vec![
            uniform_seg(0.5, 2.0),
            uniform_seg(1.0, 3.0),
            uniform_seg(2.0, 4.0),
            certain(2.5),
        ]);
        let r = uniform_seg(-0.5, 0.5);
        let k = 2;
        let mk = |pred| {
            Refiner::new(
                &db,
                ObjRef::Db(ObjectId(3)),
                ObjRef::External(&r),
                IdcaConfig {
                    max_iterations: 4,
                    uncertainty_target: 0.0,
                    ..Default::default()
                },
                pred,
            )
        };
        let mut full = mk(Predicate::FullPdf);
        let mut trunc = mk(Predicate::CountBelow { k });
        for _ in 0..4 {
            full.step();
            trunc.step();
        }
        let fs = full.snapshot();
        let ts = trunc.snapshot();
        let (tlo, thi) = ts.predicate_cdf.unwrap();
        let (flo, fhi) = fs.bounds.cdf_bounds(k);
        // the truncated direct CDF bounds must be at least as tight as the
        // ones recovered from the full per-k bounds, and consistent
        assert!(tlo >= flo - 1e-9, "tlo {tlo} flo {flo}");
        assert!(thi <= fhi + 1e-9, "thi {thi} fhi {fhi}");
        assert!(tlo <= thi);
    }
}
