//! Checkpoint + WAL durability for the owned [`crate::Engine`]: file
//! layout, the checkpoint/rotate/prune protocol, and crash recovery.
//!
//! ## File layout
//!
//! A durable engine owns one directory:
//!
//! ```text
//! checkpoint-000007.ckpt   8-byte magic "UDBCKPT1" + one frame holding
//!                          {seq, mutations, db} as compat-serde JSON
//! wal-000007.log           frames of WalRecord applied AFTER
//!                          checkpoint 7 was taken
//! checkpoint-000006.ckpt   the previous checkpoint (fallback basis)
//! wal-000006.log           records between checkpoints 6 and 7
//! ```
//!
//! Invariants: checkpoint `N` captures the database *after* every record
//! in segments `< N`; segment `wal-N.log` holds exactly the records
//! applied after checkpoint `N`. So recovery from basis `N` replays
//! segments `>= N` in ascending order and nothing else. Pruning keeps
//! the two newest checkpoints and every segment `>=` the older one, so
//! a corrupt newest checkpoint can always fall back one step and
//! re-reach the same state through the retained log.
//!
//! ## Checkpoint protocol
//!
//! 1. fsync the current WAL segment (completes the fallback chain);
//! 2. write `checkpoint-{N+1}.ckpt.tmp`, fsync it;
//! 3. rename over the final name, fsync the directory — the atomic
//!    commit point;
//! 4. rotate: new records go to `wal-{N+1}.log`;
//! 5. prune checkpoints `< N` and segments `< N`.
//!
//! A crash at any step leaves either the old basis (steps 1–3, tmp
//! files are ignored by recovery) or the new one (steps 4–5, pruning is
//! re-run by the next checkpoint) — never a broken state. Recovery
//! itself ends by taking a fresh checkpoint (*checkpoint-on-open*), so
//! a torn WAL tail is never appended to and crashing during recovery is
//! idempotent.
//!
//! ## Recovery rules
//!
//! * Checkpoints are tried newest-first; a corrupt one is skipped with a
//!   warning ([`RecoveryReport::fallback`] counts the skips).
//! * WAL segments `>=` the basis replay in order. A **torn** final
//!   record is dropped with a warning (its write never completed, so it
//!   was never acknowledged). A **corrupt** record — or any record that
//!   no longer applies cleanly — stops replay *entirely* (later records
//!   were logged against a state that includes the bad one; applying
//!   them would fabricate a state that never existed). Nothing is
//!   silently wrong: every degradation lands in
//!   [`RecoveryReport::warnings`].

use udb_index::RTree;
use udb_object::{Database, ObjectId};

use serde::{Deserialize, Serialize};

use std::io;
use std::path::{Path, PathBuf};

use crate::wal::{
    decode_frames, encode_frame, read_wal_bytes, CrashPoint, DurableIo, WalDefect, WalRecord,
};

/// Magic prefix of a checkpoint file.
pub const CHECKPOINT_MAGIC: &[u8; 8] = b"UDBCKPT1";

/// Anything the durability layer can fail with.
#[derive(Debug)]
pub enum DurableError {
    /// An IO operation failed (includes simulated crashes from
    /// [`crate::wal::FaultIo`]).
    Io(io::Error),
    /// Checkpoint files exist but none of them could be loaded: there
    /// is no sound basis to recover from. Degrading to an empty
    /// database here would be a silent wrong answer, so it is an error.
    NoValidCheckpoint {
        /// Why each candidate checkpoint was rejected, newest first.
        warnings: Vec<String>,
    },
    /// A value failed to serialize (non-finite floats — cannot happen
    /// for objects that passed construction validation).
    Encode(String),
}

impl std::fmt::Display for DurableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DurableError::Io(e) => write!(f, "durability IO error: {e}"),
            DurableError::NoValidCheckpoint { warnings } => {
                write!(
                    f,
                    "no valid checkpoint to recover from ({} candidates rejected)",
                    warnings.len()
                )
            }
            DurableError::Encode(m) => write!(f, "durability encode error: {m}"),
        }
    }
}

impl std::error::Error for DurableError {}

impl From<io::Error> for DurableError {
    fn from(e: io::Error) -> Self {
        DurableError::Io(e)
    }
}

/// What recovery found and did — the paper trail proving no degradation
/// happened silently. [`crate::Engine::recovery_report`] exposes it.
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// Sequence number of the checkpoint recovery loaded (`None`: the
    /// directory held no checkpoints — a fresh database).
    pub checkpoint_seq: Option<u64>,
    /// Corrupt checkpoints skipped before a loadable basis was found.
    pub fallback: usize,
    /// WAL records replayed on top of the basis.
    pub replayed: u64,
    /// Total mutations the recovered state embodies (checkpointed +
    /// replayed) — comparable against a live engine's
    /// [`crate::Engine::mutations`].
    pub applied_mutations: u64,
    /// Every degradation encountered: torn tails dropped, corrupt
    /// records/checkpoints skipped. Empty = clean recovery.
    pub warnings: Vec<String>,
}

/// The checkpoint payload: the full database plus the bookkeeping
/// recovery needs to line the WAL back up.
#[derive(Debug, Serialize, Deserialize)]
struct CheckpointData {
    /// This checkpoint's sequence number (also in the file name; stored
    /// inside too so a renamed file cannot lie about its position).
    seq: u64,
    /// Mutations applied over the engine's lifetime up to this snapshot.
    mutations: u64,
    /// The serialized database (tombstones compacted at write time).
    db: Database,
}

fn checkpoint_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("checkpoint-{seq:06}.ckpt"))
}

fn wal_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("wal-{seq:06}.log"))
}

/// Parses `prefix-NNNNNN.suffix` file names back to sequence numbers.
fn parse_seq(name: &str, prefix: &str, suffix: &str) -> Option<u64> {
    let rest = name.strip_prefix(prefix)?;
    let digits = rest.strip_suffix(suffix)?;
    if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// The durable directory's current contents, by kind.
struct DirListing {
    checkpoints: Vec<u64>,
    segments: Vec<u64>,
}

fn list_dir(dir: &Path) -> io::Result<DirListing> {
    let mut checkpoints = Vec::new();
    let mut segments = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(seq) = parse_seq(name, "checkpoint-", ".ckpt") {
            checkpoints.push(seq);
        } else if let Some(seq) = parse_seq(name, "wal-", ".log") {
            segments.push(seq);
        }
        // anything else (".tmp" leftovers, foreign files) is ignored
    }
    checkpoints.sort_unstable();
    segments.sort_unstable();
    Ok(DirListing {
        checkpoints,
        segments,
    })
}

/// Loads and validates one checkpoint file.
fn load_checkpoint(path: &Path) -> Result<CheckpointData, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("unreadable: {e}"))?;
    if bytes.len() < CHECKPOINT_MAGIC.len() || &bytes[..CHECKPOINT_MAGIC.len()] != CHECKPOINT_MAGIC
    {
        return Err("bad magic".into());
    }
    let (frames, defect) = decode_frames(&bytes[CHECKPOINT_MAGIC.len()..]);
    if let Some(defect) = defect {
        return Err(defect.to_string());
    }
    if frames.len() != 1 {
        return Err(format!("expected one frame, found {}", frames.len()));
    }
    let text = std::str::from_utf8(frames[0]).map_err(|e| format!("not UTF-8: {e}"))?;
    serde_json::from_str(text).map_err(|e| format!("undecodable: {e}"))
}

/// Replays one record onto the database, mirroring the engine's
/// pre-validation: a record that does not apply cleanly is reported as
/// an error (replay then stops) instead of panicking.
fn apply_record(db: &mut Database, rec: &WalRecord) -> Result<(), String> {
    match rec {
        WalRecord::Insert { object } => {
            if let Some(d) = db.dims() {
                if d != object.dims() {
                    return Err(format!(
                        "insert dimensionality {} does not match database ({d})",
                        object.dims()
                    ));
                }
            }
            db.insert((**object).clone());
            Ok(())
        }
        WalRecord::Remove { id } => {
            let id = ObjectId(*id);
            if !db.contains(id) {
                return Err(format!("remove of non-live {id:?}"));
            }
            db.remove(id);
            Ok(())
        }
        WalRecord::Update { id, object } => {
            let id = ObjectId(*id);
            if !db.contains(id) {
                return Err(format!("update of non-live {id:?}"));
            }
            if db.get(id).dims() != object.dims() {
                return Err(format!("update dimensionality mismatch for {id:?}"));
            }
            db.replace(id, (**object).clone());
            Ok(())
        }
    }
}

/// What recovery reconstructed from a durable directory.
pub(crate) struct RecoveredState {
    pub(crate) db: Database,
    pub(crate) mutations: u64,
    /// Highest sequence number seen anywhere in the directory — the
    /// next checkpoint must go above it.
    pub(crate) max_seq: u64,
    pub(crate) report: RecoveryReport,
}

/// Recovers the latest consistent state from `dir` (created if
/// missing): newest loadable checkpoint + ordered WAL tail replay, with
/// the degradation rules documented in the module header.
pub(crate) fn recover(dir: &Path) -> Result<RecoveredState, DurableError> {
    std::fs::create_dir_all(dir)?;
    let listing = list_dir(dir)?;
    let max_seq = listing
        .checkpoints
        .iter()
        .chain(listing.segments.iter())
        .copied()
        .max()
        .unwrap_or(0);

    let mut report = RecoveryReport::default();

    // newest loadable checkpoint wins
    let mut basis: Option<CheckpointData> = None;
    for &seq in listing.checkpoints.iter().rev() {
        match load_checkpoint(&checkpoint_path(dir, seq)) {
            Ok(data) => {
                if data.seq != seq {
                    report.warnings.push(format!(
                        "checkpoint-{seq:06}.ckpt skipped: embedded seq {} disagrees with name",
                        data.seq
                    ));
                    report.fallback += 1;
                    continue;
                }
                basis = Some(data);
                break;
            }
            Err(reason) => {
                report
                    .warnings
                    .push(format!("checkpoint-{seq:06}.ckpt skipped: {reason}"));
                report.fallback += 1;
            }
        }
    }
    if basis.is_none() && !listing.checkpoints.is_empty() {
        return Err(DurableError::NoValidCheckpoint {
            warnings: report.warnings,
        });
    }
    let (mut db, mut mutations, basis_seq) = match basis {
        Some(data) => {
            report.checkpoint_seq = Some(data.seq);
            (data.db, data.mutations, data.seq)
        }
        None => (Database::new(), 0, 0),
    };

    // ordered tail replay: segments >= basis
    let replay: Vec<u64> = listing
        .segments
        .iter()
        .copied()
        .filter(|&s| s >= basis_seq)
        .collect();
    'segments: for (i, &seg) in replay.iter().enumerate() {
        let path = wal_path(dir, seg);
        let bytes = std::fs::read(&path)?;
        let outcome = read_wal_bytes(&bytes);
        for rec in &outcome.records {
            if let Err(reason) = apply_record(&mut db, rec) {
                report.warnings.push(format!(
                    "wal-{seg:06}.log: record does not apply ({reason}); replay stopped"
                ));
                break 'segments;
            }
            mutations += 1;
            report.replayed += 1;
        }
        match outcome.defect {
            None => {}
            Some(WalDefect::Torn { offset }) if i == replay.len() - 1 => {
                // the expected crash signature: a half-written final
                // record that was never acknowledged
                report
                    .warnings
                    .push(format!("wal-{seg:06}.log: {}", WalDefect::Torn { offset }));
            }
            Some(defect) => {
                report
                    .warnings
                    .push(format!("wal-{seg:06}.log: {defect}; replay stopped"));
                break 'segments;
            }
        }
    }

    report.applied_mutations = mutations;
    Ok(RecoveredState {
        db,
        mutations,
        max_seq,
        report,
    })
}

/// The engine's durability sidecar: owns the directory, the IO layer
/// and the WAL/checkpoint bookkeeping. Mutation logging and
/// checkpointing route through here; the engine applies state changes
/// only after the log accepts them.
pub(crate) struct Durability {
    dir: PathBuf,
    io: Box<dyn DurableIo>,
    /// Basis sequence: records append to `wal-{seq}.log`, the next
    /// checkpoint is `seq + 1`.
    seq: u64,
    /// Records appended since the last fsync of the current segment.
    unsynced: usize,
    /// Records logged since the last checkpoint.
    since_checkpoint: u64,
    /// Fsync the segment every this many records (`0`: only at
    /// checkpoints and explicit [`Durability::sync`] calls).
    sync_every: usize,
    /// Remove the whole directory on drop (the `UDB_WAL=1` auto-dir
    /// test shim only — explicit directories are never cleaned up).
    auto_cleanup: bool,
}

impl std::fmt::Debug for Durability {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Durability")
            .field("dir", &self.dir)
            .field("seq", &self.seq)
            .field("unsynced", &self.unsynced)
            .field("since_checkpoint", &self.since_checkpoint)
            .field("sync_every", &self.sync_every)
            .finish_non_exhaustive()
    }
}

impl Durability {
    pub(crate) fn new(dir: PathBuf, io: Box<dyn DurableIo>, seq: u64, sync_every: usize) -> Self {
        Durability {
            dir,
            io,
            seq,
            unsynced: 0,
            since_checkpoint: 0,
            sync_every,
            auto_cleanup: false,
        }
    }

    pub(crate) fn with_auto_cleanup(mut self) -> Self {
        self.auto_cleanup = true;
        self
    }

    pub(crate) fn dir(&self) -> &Path {
        &self.dir
    }

    pub(crate) fn since_checkpoint(&self) -> u64 {
        self.since_checkpoint
    }

    /// Appends one record to the current segment, honouring the
    /// mid-record, before-sync and after-sync crash gates, and fsyncing
    /// per `sync_every`.
    pub(crate) fn log(&mut self, record: &WalRecord) -> Result<(), DurableError> {
        let frame = record.encode();
        let path = wal_path(&self.dir, self.seq);
        let mid = frame.len() / 2;
        self.io.append(&path, &frame[..mid])?;
        self.io.gate(CrashPoint::WalMidRecord)?;
        self.io.append(&path, &frame[mid..])?;
        self.unsynced += 1;
        self.since_checkpoint += 1;
        self.io.gate(CrashPoint::WalBeforeSync)?;
        if self.sync_every > 0 && self.unsynced >= self.sync_every {
            self.sync()?;
            self.io.gate(CrashPoint::WalAfterSync)?;
        }
        Ok(())
    }

    /// Forces every appended record to stable storage.
    pub(crate) fn sync(&mut self) -> Result<(), DurableError> {
        if self.unsynced > 0 {
            self.io.sync(&wal_path(&self.dir, self.seq))?;
            self.unsynced = 0;
        }
        Ok(())
    }

    /// Takes checkpoint `seq + 1` of `db` (see the module header for
    /// the write/rename/rotate/prune protocol and its crash gates).
    pub(crate) fn checkpoint(&mut self, db: &Database, mutations: u64) -> Result<(), DurableError> {
        // 1. complete the fallback chain: the retained old segment must
        //    hold everything this snapshot includes
        self.sync()?;

        let new_seq = self.seq + 1;
        let data = CheckpointData {
            seq: new_seq,
            mutations,
            db: db.clone(),
        };
        let json = serde_json::to_string(&data).map_err(|e| DurableError::Encode(e.to_string()))?;
        drop(data); // give the snapshot's database copy back promptly
        let mut bytes = Vec::with_capacity(CHECKPOINT_MAGIC.len() + 8 + json.len());
        bytes.extend_from_slice(CHECKPOINT_MAGIC);
        bytes.extend_from_slice(&encode_frame(json.as_bytes()));

        // 2. temp write + fsync
        let final_path = checkpoint_path(&self.dir, new_seq);
        let tmp_path = final_path.with_extension("ckpt.tmp");
        let mid = bytes.len() / 2;
        self.io.write_new(&tmp_path, &bytes[..mid])?;
        self.io.gate(CrashPoint::CheckpointMidWrite)?;
        self.io.append(&tmp_path, &bytes[mid..])?;
        self.io.sync(&tmp_path)?;
        self.io.gate(CrashPoint::CheckpointBeforeRename)?;

        // 3. atomic commit
        self.io.rename(&tmp_path, &final_path)?;
        self.io.sync_dir(&self.dir)?;
        self.io.gate(CrashPoint::CheckpointAfterRename)?;

        // 4. rotate
        let prev_seq = self.seq;
        self.seq = new_seq;
        self.unsynced = 0;
        self.since_checkpoint = 0;
        self.io.gate(CrashPoint::CheckpointBeforePrune)?;

        // 5. prune: keep this checkpoint, the previous one, and every
        //    segment the previous one may need
        let listing = list_dir(&self.dir)?;
        for seq in listing.checkpoints {
            if seq != new_seq && seq != prev_seq {
                self.io.remove_file(&checkpoint_path(&self.dir, seq))?;
            }
        }
        for seq in listing.segments {
            if seq < prev_seq {
                self.io.remove_file(&wal_path(&self.dir, seq))?;
            }
        }
        Ok(())
    }
}

impl Drop for Durability {
    fn drop(&mut self) {
        // no flush, no final checkpoint: dropping a durable engine must
        // be indistinguishable from a crash (shutdown flushing is the
        // *caller's* explicit act — `wal_sync`/`checkpoint`), so the
        // recovery path stays honest in every test that drops and
        // reopens. Auto-dir engines (the UDB_WAL shim) additionally
        // remove their temp directory.
        if self.auto_cleanup {
            let _ = std::fs::remove_dir_all(&self.dir);
        }
    }
}

/// Rebuilds the R-tree over a (possibly compacted) database — the
/// checkpoint-time structural reset shared by durable and in-memory
/// engines.
pub(crate) fn rebuild_tree(db: &Database) -> RTree<ObjectId> {
    RTree::bulk_load(db.mbrs().map(|(id, r)| (r.clone(), id)).collect(), 16)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seq_file_names_round_trip() {
        assert_eq!(
            parse_seq("checkpoint-000017.ckpt", "checkpoint-", ".ckpt"),
            Some(17)
        );
        assert_eq!(parse_seq("wal-000003.log", "wal-", ".log"), Some(3));
        assert_eq!(
            parse_seq("checkpoint-000017.ckpt.tmp", "checkpoint-", ".ckpt"),
            None
        );
        assert_eq!(parse_seq("wal-.log", "wal-", ".log"), None);
        assert_eq!(parse_seq("wal-12x4.log", "wal-", ".log"), None);
        assert_eq!(parse_seq("other.txt", "wal-", ".log"), None);
    }

    #[test]
    fn recover_empty_dir_is_fresh() {
        let dir = std::env::temp_dir().join(format!("udb-rec-fresh-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let state = recover(&dir).unwrap();
        assert!(state.db.is_empty());
        assert_eq!(state.mutations, 0);
        assert_eq!(state.max_seq, 0);
        assert_eq!(state.report.checkpoint_seq, None);
        assert!(state.report.warnings.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
