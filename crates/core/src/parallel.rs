//! Parallel query execution on a persistent worker pool.
//!
//! # Worker-pool lifecycle
//!
//! A [`WorkerPool`] owns `workers` OS threads that live for the pool's
//! whole lifetime — spawned once in [`WorkerPool::new`], joined in
//! `Drop`. Work arrives in *scopes* ([`WorkerPool::scope`]): a batch of
//! borrowing closures that is pushed onto the shared queue and executed
//! by whichever threads are free. Three properties make the pool safe
//! and deadlock-free:
//!
//! * **Scoped borrows without scoped threads** — jobs may borrow from the
//!   caller's stack (`'env`); `scope` erases the lifetime to hand the
//!   jobs to the long-lived workers, and blocks on a completion latch
//!   until every job of the batch has finished, so no borrow is ever
//!   outlived. This is the same contract as `std::thread::scope`, minus
//!   the per-call spawn/join cost.
//! * **Caller participation** — the scoping thread drains the queue
//!   itself while it waits. A nested `scope` (a pool-run candidate
//!   refinement whose inner snapshot fans its pair loop out on the same
//!   pool) therefore always makes progress even when every worker is
//!   busy: the blocked caller executes the inner jobs on its own thread.
//! * **Panic propagation** — a panicking job marks its batch and the
//!   latch still counts down; `scope` re-panics on the calling thread
//!   after the batch completes, and the worker survives to serve the
//!   next batch.
//!
//! Engines own a pool lazily through a [`PoolHandle`]: the handle is
//! cheap to clone (refiners built by an engine share the engine's pool),
//! creates the pool on first use, and transparently replaces it with a
//! larger one when a caller asks for more parallelism than the current
//! pool provides. Because the calling thread always participates, a pool
//! serving `parallelism` lanes needs only `parallelism − 1` workers.
//!
//! # Threshold-query fan-out
//!
//! Threshold queries refine every candidate independently (one
//! [`crate::Refiner`] each), which makes them embarrassingly parallel.
//! [`par_knn_threshold`] fans candidates out over the engine's pool;
//! results are identical to the sequential [`QueryEngine::knn_threshold`]
//! (the refinement is deterministic), only the completion order differs —
//! the output is therefore sorted by object id. Workers share nothing but
//! the read-only engine and an atomic work cursor; each lane accumulates
//! hits in its own buffer, merged after the scope ends, so the hot loop
//! takes no locks at all.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};

use udb_object::UncertainObject;

use crate::config::{ObjRef, Predicate};
use crate::queries::{QueryEngine, ThresholdResult};

/// A type-erased, lifetime-erased unit of work (see the safety notes in
/// [`WorkerPool::scope`]).
type Job = Box<dyn FnOnce() + Send>;

/// Queue state shared between the pool owner and its workers.
struct PoolShared {
    state: Mutex<PoolState>,
    work_ready: Condvar,
}

struct PoolState {
    queue: VecDeque<Job>,
    shutdown: bool,
}

impl PoolShared {
    /// Pops one job, or `None` immediately (never blocks).
    fn try_pop(&self) -> Option<Job> {
        self.state.lock().expect("pool poisoned").queue.pop_front()
    }
}

/// Completion latch of one `scope` batch.
struct Batch {
    state: Mutex<(usize, bool)>, // (jobs remaining, any job panicked)
    done: Condvar,
}

impl Batch {
    fn new(jobs: usize) -> Self {
        Batch {
            state: Mutex::new((jobs, false)),
            done: Condvar::new(),
        }
    }

    fn complete(&self, panicked: bool) {
        let mut state = self.state.lock().expect("batch poisoned");
        state.0 -= 1;
        state.1 |= panicked;
        if state.0 == 0 {
            self.done.notify_all();
        }
    }

    /// Blocks until the whole batch has run; `true` if any job panicked.
    fn wait(&self) -> bool {
        let mut state = self.state.lock().expect("batch poisoned");
        while state.0 > 0 {
            state = self.done.wait(state).expect("batch poisoned");
        }
        state.1
    }
}

/// A persistent pool of worker threads executing scoped job batches (see
/// the [module docs](self) for the lifecycle).
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.handles.len())
            .finish()
    }
}

impl WorkerPool {
    /// Spawns `workers` persistent threads (0 is valid: every scope then
    /// runs entirely on the calling thread, which always participates).
    pub fn new(workers: usize) -> Self {
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                queue: VecDeque::new(),
                shutdown: false,
            }),
            work_ready: Condvar::new(),
        });
        let handles = (0..workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        WorkerPool { shared, handles }
    }

    /// Number of worker threads (the pool serves `workers() + 1` lanes,
    /// counting the participating caller).
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Runs a batch of jobs that may borrow from the caller's scope and
    /// blocks until all of them have completed. The calling thread drains
    /// the queue while it waits, so nested scopes cannot deadlock.
    ///
    /// # Panics
    /// Re-panics on the calling thread if any job panicked.
    pub fn scope<'env>(&self, jobs: Vec<Box<dyn FnOnce() + Send + 'env>>) {
        if jobs.is_empty() {
            return;
        }
        let batch = Arc::new(Batch::new(jobs.len()));
        {
            let mut state = self.shared.state.lock().expect("pool poisoned");
            for job in jobs {
                let batch = Arc::clone(&batch);
                let wrapped: Box<dyn FnOnce() + Send + 'env> = Box::new(move || {
                    let result = catch_unwind(AssertUnwindSafe(job));
                    batch.complete(result.is_err());
                });
                // SAFETY: `scope` does not return before `batch.wait()`
                // confirms every job of this batch has finished executing
                // (including panicked ones — the latch counts down in all
                // cases), so data borrowed for 'env strictly outlives the
                // erased closure's execution. The fat-pointer layout of
                // `Box<dyn FnOnce + Send>` is lifetime-invariant.
                let wrapped: Job =
                    unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Job>(wrapped) };
                state.queue.push_back(wrapped);
            }
        }
        self.shared.work_ready.notify_all();
        // participate: guarantees progress even if all workers are busy
        // (or the pool has zero workers)
        while let Some(job) = self.shared.try_pop() {
            job();
        }
        if batch.wait() {
            panic!("worker pool job panicked");
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shared.state.lock().expect("pool poisoned").shutdown = true;
        self.work_ready_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl WorkerPool {
    fn work_ready_all(&self) {
        self.shared.work_ready.notify_all();
    }
}

fn worker_loop(shared: &PoolShared) {
    loop {
        let job = {
            let mut state = shared.state.lock().expect("pool poisoned");
            loop {
                if let Some(job) = state.queue.pop_front() {
                    break Some(job);
                }
                if state.shutdown {
                    break None;
                }
                state = shared.work_ready.wait(state).expect("pool poisoned");
            }
        };
        match job {
            Some(job) => job(), // panics are caught by the batch wrapper
            None => return,
        }
    }
}

/// A cloneable, lazily-initialized reference to a shared [`WorkerPool`].
///
/// Engines own one handle; every refiner they build clones it, so all
/// refiners of an engine share one pool across their whole lifetime
/// (replacing the scoped threads that were re-spawned per snapshot).
#[derive(Clone, Default)]
pub struct PoolHandle {
    inner: Arc<Mutex<Option<Arc<WorkerPool>>>>,
}

impl std::fmt::Debug for PoolHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let pool = self.inner.lock().expect("pool handle poisoned");
        f.debug_struct("PoolHandle")
            .field("workers", &pool.as_ref().map(|p| p.workers()))
            .finish()
    }
}

impl PoolHandle {
    /// The pool serving at least `parallelism` concurrent lanes (the
    /// calling thread counts as one). Returns `None` for `parallelism <=
    /// 1` — sequential execution needs no pool. Creates the pool on first
    /// use and replaces it with a larger one if a caller asks for more
    /// lanes than the current pool provides (the old pool's threads wind
    /// down once its last `Arc` drops).
    pub fn get(&self, parallelism: usize) -> Option<Arc<WorkerPool>> {
        if parallelism <= 1 {
            return None;
        }
        let mut slot = self.inner.lock().expect("pool handle poisoned");
        match slot.as_ref() {
            Some(pool) if pool.workers() + 1 >= parallelism => Some(Arc::clone(pool)),
            _ => {
                let pool = Arc::new(WorkerPool::new(parallelism - 1));
                *slot = Some(Arc::clone(&pool));
                Some(pool)
            }
        }
    }

    /// Round-fanning primitive of the lock-step candidate drivers: runs
    /// `f` once per item of `items`, on up to `lanes` concurrent lanes of
    /// the shared pool, and returns only after every call has finished.
    ///
    /// This is the batch-parallel shape of one refinement *round*: each
    /// item is a candidate whose `step()`/`snapshot()` advance
    /// independently (`f` gets exclusive `&mut` access to its item, so
    /// no synchronization is needed inside), while everything *between*
    /// rounds — retirement decisions, cross-candidate bounds — stays on
    /// the calling thread. Because each item's own call sequence is
    /// unchanged and per-item state never crosses items, results are
    /// **bit-identical for every lane count**, including `lanes == 1`
    /// (which runs inline, in slice order, without touching the pool).
    ///
    /// Items are dispatched as at most `lanes` contiguous-chunk jobs
    /// (not one job per item), so the shared queue never holds more
    /// than a lane-bounded number of pending jobs. That bound matters
    /// for nesting: a blocked scope's participation loop executes
    /// queued sibling jobs inline on its own stack, so with per-item
    /// jobs a candidate's inner pair scope could recurse through
    /// arbitrarily many sibling candidates — with chunked jobs the
    /// inline depth stays O(lanes), independent of the item count.
    ///
    /// Nested use is safe: `f` may itself open scopes on the same pool
    /// (e.g. a candidate's snapshot fanning its pair loop out via
    /// [`IdcaConfig::snapshot_threads`](crate::IdcaConfig::snapshot_threads));
    /// the scoping thread participates in the queue, so candidate × pair
    /// nesting cannot deadlock.
    ///
    /// # Panics
    /// Re-panics on the calling thread if any `f` call panicked (the
    /// pool itself survives).
    pub fn fan_each<T: Send>(&self, lanes: usize, items: &mut [T], f: impl Fn(&mut T) + Sync) {
        let lanes = lanes.min(items.len()).max(1);
        match self.get(lanes) {
            Some(pool) => {
                let f = &f;
                let chunk = items.len().div_ceil(lanes);
                let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = items
                    .chunks_mut(chunk)
                    .map(|chunk| {
                        Box::new(move || chunk.iter_mut().for_each(f))
                            as Box<dyn FnOnce() + Send + '_>
                    })
                    .collect();
                pool.scope(jobs);
            }
            None => {
                for item in items.iter_mut() {
                    f(item);
                }
            }
        }
    }
}

/// Parallel probabilistic threshold kNN: semantics of
/// [`QueryEngine::knn_threshold`], executed on `threads` lanes of the
/// engine's persistent worker pool.
///
/// # Panics
/// Panics if `threads == 0`, `k == 0` or `tau ∉ [0, 1)`.
pub fn par_knn_threshold(
    engine: &QueryEngine<'_>,
    q: &UncertainObject,
    k: usize,
    tau: f64,
    threads: usize,
) -> Vec<ThresholdResult> {
    assert!(threads >= 1, "need at least one worker thread");
    assert!(k >= 1, "k must be positive");
    assert!((0.0..1.0).contains(&tau), "tau must be in [0, 1)");

    let candidates = engine.knn_candidates(q.mbr(), k);
    let lanes = threads.min(candidates.len().max(1));
    let next = std::sync::atomic::AtomicUsize::new(0);

    let refine_from_cursor = |local: &mut Vec<ThresholdResult>| loop {
        let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let Some(&id) = candidates.get(i) else {
            break;
        };
        let mut refiner = engine.refiner(
            ObjRef::Db(id),
            ObjRef::External(q),
            Predicate::Threshold { k, tau },
        );
        let snap = refiner.run();
        let (lo, hi) = snap
            .predicate_cdf
            .expect("threshold predicate produces CDF");
        if hi <= 0.0 {
            continue;
        }
        local.push(ThresholdResult {
            id,
            prob_lower: lo,
            prob_upper: hi,
            iterations: snap.iteration,
        });
    };

    let mut buffers: Vec<Vec<ThresholdResult>> = (0..lanes).map(|_| Vec::new()).collect();
    match engine.pool_handle().get(lanes) {
        Some(pool) => {
            let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = buffers
                .iter_mut()
                .map(|buf| Box::new(|| refine_from_cursor(buf)) as Box<dyn FnOnce() + Send + '_>)
                .collect();
            pool.scope(jobs);
        }
        None => refine_from_cursor(&mut buffers[0]),
    }

    let mut out: Vec<ThresholdResult> = buffers.into_iter().flatten().collect();
    out.sort_by_key(|r| r.id);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use udb_geometry::LpNorm;
    use udb_object::Database;
    use udb_workload::{QuerySet, SyntheticConfig};

    fn db() -> (Database, SyntheticConfig) {
        let cfg = SyntheticConfig {
            n: 400,
            max_extent: 0.01,
            ..Default::default()
        };
        (cfg.generate(), cfg)
    }

    #[test]
    fn parallel_matches_sequential() {
        let (db, cfg) = db();
        let qs = QuerySet::generate(&db, &cfg, 3, 10, LpNorm::L2, 5);
        let engine = QueryEngine::new(&db);
        for (r, _) in qs.iter() {
            let mut seq = engine.knn_threshold(r, 3, 0.5);
            seq.sort_by_key(|x| x.id);
            for threads in [1usize, 2, 4] {
                let par = par_knn_threshold(&engine, r, 3, 0.5, threads);
                assert_eq!(par.len(), seq.len(), "threads={threads}");
                for (a, b) in par.iter().zip(seq.iter()) {
                    assert_eq!(a.id, b.id);
                    assert!((a.prob_lower - b.prob_lower).abs() < 1e-12);
                    assert!((a.prob_upper - b.prob_upper).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn more_threads_than_candidates_is_fine() {
        let (db, cfg) = db();
        let qs = QuerySet::generate(&db, &cfg, 1, 1, LpNorm::L2, 6);
        let engine = QueryEngine::new(&db);
        let (r, _) = qs.iter().next().unwrap();
        let res = par_knn_threshold(&engine, r, 1, 0.25, 64);
        assert!(!res.is_empty());
    }

    #[test]
    #[should_panic(expected = "worker thread")]
    fn zero_threads_rejected() {
        let (db, _) = db();
        let engine = QueryEngine::new(&db);
        let q = udb_object::UncertainObject::certain(udb_geometry::Point::from([0.5, 0.5]));
        let _ = par_knn_threshold(&engine, &q, 1, 0.5, 0);
    }

    #[test]
    fn pool_runs_all_jobs_and_is_reusable() {
        let pool = WorkerPool::new(3);
        for round in 0..3 {
            let counter = std::sync::atomic::AtomicUsize::new(0);
            let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = (0..32)
                .map(|_| {
                    Box::new(|| {
                        counter.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    }) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            pool.scope(jobs);
            assert_eq!(
                counter.load(std::sync::atomic::Ordering::Relaxed),
                32,
                "round {round}"
            );
        }
    }

    #[test]
    fn pool_with_zero_workers_runs_on_caller() {
        let pool = WorkerPool::new(0);
        let mut hit = false;
        pool.scope(vec![Box::new(|| {
            hit = true;
        })]);
        assert!(hit);
    }

    #[test]
    fn nested_scopes_do_not_deadlock() {
        // more outer jobs than workers, each spawning an inner batch on
        // the same pool: only caller participation makes this terminate
        let pool = WorkerPool::new(2);
        let total = std::sync::atomic::AtomicUsize::new(0);
        let outer: Vec<Box<dyn FnOnce() + Send + '_>> = (0..8)
            .map(|_| {
                let pool = &pool;
                let total = &total;
                Box::new(move || {
                    let inner: Vec<Box<dyn FnOnce() + Send + '_>> = (0..4)
                        .map(|_| {
                            Box::new(|| {
                                total.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            }) as Box<dyn FnOnce() + Send + '_>
                        })
                        .collect();
                    pool.scope(inner);
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        pool.scope(outer);
        assert_eq!(total.load(std::sync::atomic::Ordering::Relaxed), 32);
    }

    #[test]
    fn pool_propagates_job_panics_and_survives() {
        let pool = WorkerPool::new(1);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.scope(vec![Box::new(|| panic!("boom"))]);
        }));
        assert!(result.is_err(), "scope must re-panic");
        // the pool stays usable after a panicked batch
        let mut ok = false;
        pool.scope(vec![Box::new(|| {
            ok = true;
        })]);
        assert!(ok);
    }

    #[test]
    fn fan_each_runs_every_item_at_any_lane_count() {
        let handle = PoolHandle::default();
        for lanes in [1usize, 2, 4, 64] {
            let mut items: Vec<usize> = (0..17).collect();
            handle.fan_each(lanes, &mut items, |x| *x += 100);
            assert_eq!(items, (100..117).collect::<Vec<_>>(), "lanes={lanes}");
        }
        // empty slices are a no-op
        handle.fan_each(4, &mut [] as &mut [usize], |_| panic!("no items"));
    }

    #[test]
    fn fan_each_nested_candidate_pair_scopes_complete() {
        // the candidate × pair shape: outer fan over "candidates", each
        // opening an inner scope on the same pool for its "pairs"
        let handle = PoolHandle::default();
        let mut totals = vec![0usize; 8];
        handle.fan_each(4, &mut totals, |t| {
            let mut pairs = vec![1usize; 16];
            handle.fan_each(4, &mut pairs, |p| *p *= 2);
            *t = pairs.iter().sum();
        });
        assert!(totals.iter().all(|&t| t == 32), "{totals:?}");
    }

    #[test]
    fn fan_each_propagates_nested_panics_and_pool_survives() {
        let handle = PoolHandle::default();
        let mut items: Vec<usize> = (0..8).collect();
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            handle.fan_each(4, &mut items, |i| {
                // nested inner scope on the same pool; one candidate's
                // inner job panics, the outer round must re-panic
                let mut inner = vec![*i; 4];
                handle.fan_each(4, &mut inner, |j| {
                    if *j == 3 {
                        panic!("inner pair job failed");
                    }
                });
            });
        }));
        assert!(result.is_err(), "nested panic must propagate to the round");
        // the pool stays usable for the next round
        let mut again: Vec<usize> = (0..8).collect();
        handle.fan_each(4, &mut again, |i| *i += 1);
        assert_eq!(again, (1..9).collect::<Vec<_>>());
    }

    #[test]
    fn pool_handle_grows_on_demand() {
        let handle = PoolHandle::default();
        assert!(handle.get(1).is_none());
        let small = handle.get(2).expect("pool for 2 lanes");
        assert_eq!(small.workers(), 1);
        // same pool serves an equal-or-smaller request
        let again = handle.get(2).expect("cached pool");
        assert_eq!(again.workers(), 1);
        // a bigger request replaces it
        let big = handle.get(4).expect("grown pool");
        assert_eq!(big.workers(), 3);
        assert_eq!(handle.get(3).expect("still cached").workers(), 3);
    }
}
