//! Parallel query execution.
//!
//! Threshold queries refine every candidate independently (one
//! [`crate::Refiner`] each), which makes them embarrassingly parallel.
//! [`par_knn_threshold`] fans candidates out over scoped worker threads;
//! results are identical to the sequential [`QueryEngine::knn_threshold`]
//! (the refinement is deterministic), only the order may differ — the
//! output is therefore sorted by object id.
//!
//! Workers share nothing but the read-only engine and an atomic work
//! cursor: each thread accumulates hits in a thread-local buffer that is
//! handed back through the scope's join handle and merged after the join,
//! so the hot loop takes no locks at all.

use udb_object::UncertainObject;

use crate::config::{ObjRef, Predicate};
use crate::queries::{QueryEngine, ThresholdResult};

/// Parallel probabilistic threshold kNN: semantics of
/// [`QueryEngine::knn_threshold`], executed on `threads` worker threads.
///
/// # Panics
/// Panics if `threads == 0`, `k == 0` or `tau ∉ [0, 1)`.
pub fn par_knn_threshold(
    engine: &QueryEngine<'_>,
    q: &UncertainObject,
    k: usize,
    tau: f64,
    threads: usize,
) -> Vec<ThresholdResult> {
    assert!(threads >= 1, "need at least one worker thread");
    assert!(k >= 1, "k must be positive");
    assert!((0.0..1.0).contains(&tau), "tau must be in [0, 1)");

    let candidates = engine.knn_candidates_public(q.mbr(), k);
    let workers = threads.min(candidates.len().max(1));
    let next = std::sync::atomic::AtomicUsize::new(0);

    let mut out: Vec<ThresholdResult> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    // per-thread buffer: merged after the join, so workers
                    // never contend on a shared collector
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        let Some(&id) = candidates.get(i) else {
                            break;
                        };
                        let mut refiner = engine.refiner(
                            ObjRef::Db(id),
                            ObjRef::External(q),
                            Predicate::Threshold { k, tau },
                        );
                        let snap = refiner.run();
                        let (lo, hi) = snap
                            .predicate_cdf
                            .expect("threshold predicate produces CDF");
                        if hi <= 0.0 {
                            continue;
                        }
                        local.push(ThresholdResult {
                            id,
                            prob_lower: lo,
                            prob_upper: hi,
                            iterations: snap.iteration,
                        });
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("worker thread panicked"))
            .collect()
    });

    out.sort_by_key(|r| r.id);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use udb_geometry::LpNorm;
    use udb_object::Database;
    use udb_workload::{QuerySet, SyntheticConfig};

    fn db() -> (Database, SyntheticConfig) {
        let cfg = SyntheticConfig {
            n: 400,
            max_extent: 0.01,
            ..Default::default()
        };
        (cfg.generate(), cfg)
    }

    #[test]
    fn parallel_matches_sequential() {
        let (db, cfg) = db();
        let qs = QuerySet::generate(&db, &cfg, 3, 10, LpNorm::L2, 5);
        let engine = QueryEngine::new(&db);
        for (r, _) in qs.iter() {
            let mut seq = engine.knn_threshold(r, 3, 0.5);
            seq.sort_by_key(|x| x.id);
            for threads in [1usize, 2, 4] {
                let par = par_knn_threshold(&engine, r, 3, 0.5, threads);
                assert_eq!(par.len(), seq.len(), "threads={threads}");
                for (a, b) in par.iter().zip(seq.iter()) {
                    assert_eq!(a.id, b.id);
                    assert!((a.prob_lower - b.prob_lower).abs() < 1e-12);
                    assert!((a.prob_upper - b.prob_upper).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn more_threads_than_candidates_is_fine() {
        let (db, cfg) = db();
        let qs = QuerySet::generate(&db, &cfg, 1, 1, LpNorm::L2, 6);
        let engine = QueryEngine::new(&db);
        let (r, _) = qs.iter().next().unwrap();
        let res = par_knn_threshold(&engine, r, 1, 0.25, 64);
        assert!(!res.is_empty());
    }

    #[test]
    #[should_panic(expected = "worker thread")]
    fn zero_threads_rejected() {
        let (db, _) = db();
        let engine = QueryEngine::new(&db);
        let q = udb_object::UncertainObject::certain(udb_geometry::Point::from([0.5, 0.5]));
        let _ = par_knn_threshold(&engine, &q, 1, 0.5, 0);
    }
}
