//! The sharded serving engine: N independent [`Engine`] shards behind
//! one router, bit-identical to a single engine holding the union.
//!
//! # The global-id scheme
//!
//! Shard count `n` interleaves the id space: global id `g` lives in
//! shard `g mod n` at local slot `g div n` (for power-of-two `n` this
//! is exactly a shard tag bit-or'd into the low bits of the local id:
//! `g = local << log2(n) | shard`). The tag sits in the **low** bits —
//! not the high bits — deliberately: refinement multiplies UGF factors
//! in ascending-id order, so result bits depend on id *order*. With
//! low-bit tags and round-robin insert routing, global ids are assigned
//! in ascending arrival order — the i-th object ever inserted gets
//! global id `i`, exactly the id a single engine would assign — so
//! sorted-global-id order equals the single engine's sorted-id order
//! and every refinement product multiplies in the same order. A
//! high-bit tag would sort all of shard 0 before all of shard 1 and
//! reorder the products (float multiplication does not reassociate).
//!
//! Ids are stable under tombstones: removals kill a global id forever
//! (the shard's local slot tombstones, local ids are never reused, so
//! global ids are never reused).
//!
//! # Routing
//!
//! Mutations route by id: `remove`/`update` go to shard `g mod n`;
//! `insert` goes to the shard whose next fresh *global* id
//! (`next_local · n + shard`) is smallest — plain round-robin in the
//! steady state, and self-healing after a lossy crash recovery (a
//! shard that lost an unsynced tail re-fills its id holes first, so
//! global ids keep being assigned in ascending order). Queries fan out
//! across all shards through the `crate::router` plane, which merges
//! per-shard candidate streams under one global pruning bound and sums
//! per-shard RkNN veto counts; refinement itself runs at the router
//! over a cross-shard [`crate::DbView`], so influence sets spanning
//! shards multiply in exactly the single-engine order.
//!
//! A one-shard engine **is** the plain engine: every query and batch
//! delegates to the shard's own entry points (asserted in the
//! equivalence suite via the router's untouched [`RefineStats`]), so
//! the `UDB_SHARDS=1` CI axis exercises the identical code path the
//! non-sharded suite runs.
//!
//! # Durability
//!
//! [`ShardedEngine::open`] gives every shard its own directory
//! (`<dir>/shard-<i>`) with its own WAL + checkpoints; a crash in one
//! shard recovers without touching the others
//! (`tests/sharded_durability.rs`). A `shards` marker file pins the
//! shard count a directory was created with — reopening with a
//! different count would silently re-map every global id.

use udb_geometry::Rect;
use udb_index::RTree;
use udb_object::{Database, ObjectId, UncertainObject};

use std::path::Path;
use std::sync::Arc;

use crate::batch::{DecompCache, QueryBatch, QueryView, SharedRefineCtx};
use crate::config::IdcaConfig;
use crate::durable::{DurableError, RecoveryReport};
use crate::engine::Engine;
use crate::parallel::PoolHandle;
use crate::queries::ThresholdResult;
use crate::refiner::{RefineStats, ScratchPool};
use crate::router::{QueryPlane, ShardRef};
use crate::standing::{
    self, validate_spec, ResultDelta, StandingRegistry, StandingSpec, StandingStats,
};
use crate::wal::{DurableIo, FileIo};

/// The `UDB_SHARDS` environment knob: how many shards test suites,
/// examples and the serve binary should run with. `None` when unset or
/// unparsable (callers fall back to 1, the plain engine).
pub fn env_shards() -> Option<usize> {
    std::env::var("UDB_SHARDS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n >= 1)
}

/// N engine shards with disjoint interleaved id spaces behind one
/// mutation router and one cross-shard query plane (see the module
/// docs). The public surface mirrors [`Engine`] — insert/remove/update
/// in place, per-query entry points, [`ShardedEngine::run_batch`] —
/// with ids being *global* ids everywhere.
///
/// ```
/// use udb_core::ShardedEngine;
/// use udb_geometry::Point;
/// use udb_object::{Database, ObjectId, UncertainObject};
///
/// let db = Database::from_objects(vec![
///     UncertainObject::certain(Point::from([1.0, 0.0])),
///     UncertainObject::certain(Point::from([2.0, 0.0])),
/// ]);
/// let mut engine = ShardedEngine::new(db, 2);
/// // round-robin: the next insert lands on shard 0 at global id 2
/// let id = engine.insert(UncertainObject::certain(Point::from([3.0, 0.0])));
/// assert_eq!(id, ObjectId(2));
/// let q = UncertainObject::certain(Point::from([0.0, 0.0]));
/// assert_eq!(engine.knn_threshold(&q, 1, 0.5).len(), 1);
/// ```
pub struct ShardedEngine {
    shards: Vec<Engine>,
    cfg: IdcaConfig,
    /// Router-level worker pool: cross-shard batches fan their query
    /// tasks over this pool (shard pools only serve the 1-shard path).
    pool: PoolHandle,
    /// Router-level persistent decomposition cache, keyed by *global*
    /// id (the shard engines' own caches are idle above 1 shard).
    decomps: Arc<DecompCache>,
    /// Router-level refiner/filter scratch pool.
    scratch: Arc<ScratchPool>,
    /// Router-level two-tier refinement counters. Stays at zero while
    /// queries delegate to a single shard — the 1-shard plain-path
    /// assertion the equivalence suite checks.
    stats: Arc<RefineStats>,
    /// Router-level standing-query registry: subscriptions span all
    /// shards, so they register here and maintain against the
    /// cross-shard plane. A one-shard engine delegates to the shard's
    /// own registry instead (the plain path), leaving this one empty.
    standing: StandingRegistry,
}

impl std::fmt::Debug for ShardedEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedEngine")
            .field("shards", &self.shards.len())
            .field("objects", &self.len())
            .field("decomp_cache_len", &self.decomps.len())
            .field("cfg", &self.cfg)
            .finish_non_exhaustive()
    }
}

impl ShardedEngine {
    /// Shards `db` across `shards` engines with the default
    /// configuration. See [`ShardedEngine::with_config`].
    pub fn new(db: Database, shards: usize) -> Self {
        ShardedEngine::with_config(db, IdcaConfig::default(), shards)
    }

    /// Shards `db` round-robin across `shards` engines: object `i`
    /// (ascending id order) goes to shard `i mod shards`, keeping its
    /// id as the global id — the sharded engine answers exactly like
    /// `Engine::with_config(db, cfg)` over the same database.
    ///
    /// # Panics
    /// Panics if `shards == 0`, or if `db` is not contiguous (ids
    /// `0..len` — a database with tombstones has no arrival order to
    /// reconstruct; shard it before removing, not after).
    pub fn with_config(db: Database, cfg: IdcaConfig, shards: usize) -> Self {
        assert!(shards >= 1, "need at least one shard");
        assert!(
            db.base_id() == 0 && db.next_id() as usize == db.len(),
            "sharding requires a contiguous database (ids 0..len, no tombstones)"
        );
        let mut parts: Vec<Vec<UncertainObject>> = (0..shards).map(|_| Vec::new()).collect();
        for (id, obj) in db.iter() {
            parts[id.index() % shards].push(obj.clone());
        }
        let engines: Vec<Engine> = parts
            .into_iter()
            .map(|objs| Engine::with_config(Database::from_objects(objs), cfg.clone()))
            .collect();
        ShardedEngine::assemble(engines, cfg)
    }

    /// Opens (creating or recovering) a durable sharded engine: shard
    /// `i` owns `<dir>/shard-<i>` with its own WAL + checkpoints and
    /// recovers independently — a crash in one shard never touches the
    /// others' directories. See [`Engine::open`] for the per-shard
    /// recovery semantics.
    ///
    /// # Errors
    /// Fails when any shard fails to open, or on IO errors around the
    /// `shards` marker file.
    ///
    /// # Panics
    /// Panics if `shards == 0`, or if the directory was created with a
    /// different shard count (the marker file disagrees) — reopening
    /// with a different count would silently re-map every global id.
    pub fn open(
        dir: impl AsRef<Path>,
        cfg: IdcaConfig,
        shards: usize,
    ) -> Result<Self, DurableError> {
        ShardedEngine::open_with_io(dir, cfg, shards, |_| Box::new(FileIo::new()))
    }

    /// [`ShardedEngine::open`] with one injected IO layer per shard —
    /// the fault-injection hook: arm a [`crate::FaultIo`] for a single
    /// shard to crash it while its siblings keep running clean.
    pub fn open_with_io(
        dir: impl AsRef<Path>,
        cfg: IdcaConfig,
        shards: usize,
        mut io: impl FnMut(usize) -> Box<dyn DurableIo>,
    ) -> Result<Self, DurableError> {
        assert!(shards >= 1, "need at least one shard");
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let marker = dir.join("shards");
        match std::fs::read_to_string(&marker) {
            Ok(text) => {
                let recorded: usize = text.trim().parse().unwrap_or(0);
                assert_eq!(
                    recorded, shards,
                    "directory {dir:?} was created with {recorded} shard(s); reopening with \
                     {shards} would re-map every global id"
                );
            }
            Err(_) => std::fs::write(&marker, format!("{shards}\n"))?,
        }
        let mut engines = Vec::with_capacity(shards);
        for s in 0..shards {
            engines.push(Engine::open_with_io(
                dir.join(format!("shard-{s}")),
                cfg.clone(),
                io(s),
            )?);
        }
        Ok(ShardedEngine::assemble(engines, cfg))
    }

    /// The shared construction tail: router-owned pool, cache, scratch
    /// and stats around an assembled shard vector.
    fn assemble(shards: Vec<Engine>, cfg: IdcaConfig) -> Self {
        ShardedEngine {
            shards,
            pool: PoolHandle::default(),
            decomps: Arc::new(DecompCache::new(cfg.split_strategy)),
            scratch: Arc::new(ScratchPool::new()),
            stats: Arc::new(RefineStats::default()),
            cfg,
            standing: StandingRegistry::default(),
        }
    }

    // ------------------------------------------------------------------
    // Id space
    // ------------------------------------------------------------------

    /// Shard count.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard holding global id `id` (`id mod n`).
    pub fn shard_of(&self, id: ObjectId) -> usize {
        id.index() % self.shards.len()
    }

    /// The local id of global id `id` within its shard (`id div n`).
    pub fn local_id(&self, id: ObjectId) -> ObjectId {
        ObjectId(id.0 / self.shards.len() as u32)
    }

    /// The global id of shard `shard`'s local id (`local · n + shard`).
    pub fn global_id(&self, shard: usize, local: ObjectId) -> ObjectId {
        ObjectId(local.0 * self.shards.len() as u32 + shard as u32)
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// The shard engines, in tag order. Global id `g` lives in
    /// `shards()[g % n]` under local id `g / n`.
    pub fn shards(&self) -> &[Engine] {
        &self.shards
    }

    /// The engine configuration.
    pub fn config(&self) -> &IdcaConfig {
        &self.cfg
    }

    /// Live objects across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.db().len()).sum()
    }

    /// Whether no shard holds a live object.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Mutations applied across all shards over their lifetimes.
    pub fn mutations(&self) -> u64 {
        self.shards.iter().map(Engine::mutations).sum()
    }

    /// Whether every shard logs to its own WAL directory.
    pub fn is_durable(&self) -> bool {
        self.shards.iter().all(Engine::is_durable)
    }

    /// Per-shard recovery reports (aligned with [`ShardedEngine::shards`]);
    /// `None` entries are shards that were constructed, not opened.
    pub fn recovery_reports(&self) -> Vec<Option<&RecoveryReport>> {
        self.shards.iter().map(Engine::recovery_report).collect()
    }

    /// The *router-level* two-tier refinement counters: advanced only
    /// by cross-shard query plans. A one-shard engine delegates to the
    /// shard's own pipeline, so these stay at zero — the plain-path
    /// assertion.
    pub fn refine_stats(&self) -> &Arc<RefineStats> {
        &self.stats
    }

    /// Objects held by the router-level decomposition cache.
    pub fn decomp_cache_len(&self) -> usize {
        self.decomps.len()
    }

    /// Whether a global id is live.
    pub fn contains(&self, id: ObjectId) -> bool {
        self.shards[self.shard_of(id)]
            .db()
            .contains(self.local_id(id))
    }

    /// The live object behind a global id.
    ///
    /// # Panics
    /// Panics if `id` is dead or out of range.
    pub fn get(&self, id: ObjectId) -> &UncertainObject {
        self.shards[self.shard_of(id)].db().get(self.local_id(id))
    }

    /// The live object behind a global id, `None` when dead.
    pub fn try_get(&self, id: ObjectId) -> Option<&UncertainObject> {
        let shard = self.shards.get(self.shard_of(id))?;
        shard.db().try_get(self.local_id(id))
    }

    // ------------------------------------------------------------------
    // Mutation routing
    // ------------------------------------------------------------------

    /// The shard the next insert routes to, with the global id it will
    /// assign: the smallest next fresh global id across shards — plain
    /// round-robin in the steady state (see the module docs).
    fn insert_slot(&self) -> (usize, u32) {
        let n = self.shards.len() as u64;
        let (s, gid) = self
            .shards
            .iter()
            .enumerate()
            .map(|(s, shard)| (s, u64::from(shard.db().next_id()) * n + s as u64))
            .min_by_key(|&(_, gid)| gid)
            .expect("at least one shard");
        (s, u32::try_from(gid).expect("global id space exhausted"))
    }

    /// Inserts an object, returning its fresh *global* id — for the
    /// same arrival sequence, the same id a single engine would assign.
    ///
    /// # Panics
    /// Panics on dimensionality mismatch, or when the shard's WAL
    /// rejects the record ([`ShardedEngine::try_insert`] to handle).
    pub fn insert(&mut self, object: UncertainObject) -> ObjectId {
        self.try_insert(object).expect("WAL append failed")
    }

    /// [`ShardedEngine::insert`], surfacing WAL errors instead of
    /// panicking. The mutation is not applied on error.
    ///
    /// # Errors
    /// Fails when the target shard cannot log the record.
    pub fn try_insert(&mut self, object: UncertainObject) -> Result<ObjectId, DurableError> {
        let (s, gid) = self.insert_slot();
        let local = self.shards[s].try_insert(object)?;
        debug_assert_eq!(self.global_id(s, local), ObjectId(gid));
        // fresh global ids are never reused, so no cache invalidation
        let id = ObjectId(gid);
        if !self.standing.is_empty() {
            let m = standing::Mutation {
                id,
                old: None,
                new: Some(self.get(id).mbr().clone()),
            };
            self.maintain_standing(&m);
        }
        Ok(id)
    }

    /// Removes the object behind a global id, returning it. The id is
    /// dead forever on its shard.
    ///
    /// # Panics
    /// Panics if `id` is not live, or when the shard's WAL rejects the
    /// record ([`ShardedEngine::try_remove`] to handle).
    pub fn remove(&mut self, id: ObjectId) -> UncertainObject {
        self.try_remove(id).expect("WAL append failed")
    }

    /// [`ShardedEngine::remove`], surfacing WAL errors.
    ///
    /// # Errors
    /// Fails when the owning shard cannot log the record.
    ///
    /// # Panics
    /// Panics if `id` is not a live object.
    pub fn try_remove(&mut self, id: ObjectId) -> Result<UncertainObject, DurableError> {
        let shard = self.shard_of(id);
        let local = self.local_id(id);
        let object = self.shards[shard].try_remove(local)?;
        // the router cache is keyed by global id; the shard engine only
        // invalidated its own (local-id-keyed, idle above 1 shard) cache
        self.decomps.invalidate(id);
        if !self.standing.is_empty() {
            let m = standing::Mutation {
                id,
                old: Some(object.mbr().clone()),
                new: None,
            };
            self.maintain_standing(&m);
        }
        Ok(object)
    }

    /// Replaces the object behind a live global id, returning the
    /// previous object.
    ///
    /// # Panics
    /// Panics if `id` is dead or the dimensionality differs, or when
    /// the shard's WAL rejects ([`ShardedEngine::try_update`] to handle).
    pub fn update(&mut self, id: ObjectId, object: UncertainObject) -> UncertainObject {
        self.try_update(id, object).expect("WAL append failed")
    }

    /// [`ShardedEngine::update`], surfacing WAL errors.
    ///
    /// # Errors
    /// Fails when the owning shard cannot log the record.
    ///
    /// # Panics
    /// Panics if `id` is dead or the dimensionality differs.
    pub fn try_update(
        &mut self,
        id: ObjectId,
        object: UncertainObject,
    ) -> Result<UncertainObject, DurableError> {
        let shard = self.shard_of(id);
        let local = self.local_id(id);
        let old = self.shards[shard].try_update(local, object)?;
        self.decomps.invalidate(id);
        if !self.standing.is_empty() {
            let m = standing::Mutation {
                id,
                old: Some(old.mbr().clone()),
                new: Some(self.get(id).mbr().clone()),
            };
            self.maintain_standing(&m);
        }
        Ok(old)
    }

    /// Checkpoints every shard (compaction + index rebuild; durable
    /// shards snapshot and rotate their WALs).
    ///
    /// # Errors
    /// Fails on the first shard whose snapshot cannot be written;
    /// earlier shards have already checkpointed (each directory is
    /// independent, so partial progress is safe).
    pub fn checkpoint(&mut self) -> Result<(), DurableError> {
        for shard in &mut self.shards {
            shard.checkpoint()?;
        }
        Ok(())
    }

    /// Forces every shard's logged records to stable storage.
    ///
    /// # Errors
    /// Fails on the first shard whose fsync fails.
    pub fn wal_sync(&mut self) -> Result<(), DurableError> {
        for shard in &mut self.shards {
            shard.wal_sync()?;
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Standing queries
    // ------------------------------------------------------------------

    /// Registers a standing query over the union of all shards (see
    /// [`Engine::subscribe`]): the initial answer and every maintained
    /// state are bit-identical to the single-engine subscription at any
    /// shard count. One shard delegates to the shard's own registry —
    /// the plain path — so subscription ids line up across shard counts
    /// (both counters assign 1, 2, … in registration order).
    ///
    /// # Panics
    /// Panics on invalid parameters, like the one-shot entry points.
    pub fn subscribe(
        &mut self,
        q: UncertainObject,
        spec: StandingSpec,
    ) -> (u64, Vec<ThresholdResult>) {
        validate_spec(&spec);
        if self.shards.len() == 1 {
            return self.shards[0].subscribe(q, spec);
        }
        let mut reg = std::mem::take(&mut self.standing);
        let out = {
            let dbs: Vec<&Database> = self.shards.iter().map(Engine::db).collect();
            let trees: Vec<&RTree<ObjectId>> = self.shards.iter().map(Engine::tree).collect();
            let ctx = self.ctx();
            standing::subscribe_registry(&mut reg, self.plane(&dbs, &trees), &ctx, q, spec)
        };
        self.trim_cache();
        self.standing = reg;
        out
    }

    /// Drops a subscription; `false` when the id is unknown.
    pub fn unsubscribe(&mut self, id: u64) -> bool {
        if self.shards.len() == 1 {
            return self.shards[0].unsubscribe(id);
        }
        self.standing.unsubscribe(id)
    }

    /// The standing-query maintenance counters. Every counter is
    /// shard-count-invariant: the tier decisions are purely geometric.
    pub fn standing_stats(&self) -> StandingStats {
        if self.shards.len() == 1 {
            return self.shards[0].standing_stats();
        }
        self.standing.stats()
    }

    /// Drains the result deltas queued by maintenance since the last
    /// call (in mutation, then registration order).
    pub fn take_standing_deltas(&mut self) -> Vec<ResultDelta> {
        if self.shards.len() == 1 {
            return self.shards[0].take_standing_deltas();
        }
        self.standing.take_deltas()
    }

    /// The live subscriptions, in registration order.
    pub fn standing_queries(&self) -> &[standing::StandingQuery] {
        if self.shards.len() == 1 {
            return self.shards[0].standing_queries();
        }
        self.standing.subscriptions()
    }

    /// The router-level post-apply maintenance pass: the mutation was
    /// routed to exactly one shard, but registered bounds span shards,
    /// so the guards test against the cross-shard plane and any
    /// re-refinement runs the same merged pipeline queries run.
    fn maintain_standing(&mut self, m: &standing::Mutation) {
        debug_assert!(self.shards.len() > 1, "one shard maintains in the shard");
        let mut reg = std::mem::take(&mut self.standing);
        {
            let dbs: Vec<&Database> = self.shards.iter().map(Engine::db).collect();
            let trees: Vec<&RTree<ObjectId>> = self.shards.iter().map(Engine::tree).collect();
            let ctx = self.ctx();
            standing::maintain_registry(&mut reg, self.plane(&dbs, &trees), &ctx, m);
        }
        self.trim_cache();
        self.standing = reg;
    }

    // ------------------------------------------------------------------
    // Queries
    // ------------------------------------------------------------------

    /// The global id of the live object whose MBR is nearest to `probe`
    /// by MinDist (`None` when empty): the minimum of the per-shard
    /// nearest hits, ties broken toward the smaller global id. (A
    /// single engine breaks exact MinDist ties in index order instead —
    /// measure-zero for continuous coordinates; workload drivers use
    /// this only to pick mutation targets.)
    pub fn nearest(&self, probe: &Rect) -> Option<ObjectId> {
        if self.shards.len() == 1 {
            return self.shards[0].nearest(probe);
        }
        let mut best: Option<(f64, ObjectId)> = None;
        for (s, shard) in self.shards.iter().enumerate() {
            if let Some(hit) = shard.tree().knn_iter(probe, self.cfg.norm).next() {
                let cand = (hit.dist, self.global_id(s, hit.payload));
                if best.is_none_or(|b| cand < b) {
                    best = Some(cand);
                }
            }
        }
        best.map(|(_, id)| id)
    }

    /// Index-driven spatial kNN candidate set over all shards (global
    /// ids, discovery order) — the merged-stream equivalent of
    /// [`Engine::knn_candidates`].
    pub fn knn_candidates(&self, q: &Rect, k: usize) -> Vec<ObjectId> {
        if self.shards.len() == 1 {
            return self.shards[0].knn_candidates(q, k);
        }
        let dbs: Vec<&Database> = self.shards.iter().map(Engine::db).collect();
        let trees: Vec<&RTree<ObjectId>> = self.shards.iter().map(Engine::tree).collect();
        self.plane(&dbs, &trees).knn_candidates(q, k)
    }

    /// Per-request candidate sets (sorted global ids) for many spatial
    /// kNN requests at once — the sharded equivalent of
    /// [`Engine::knn_candidates_batch`], guaranteed to return exactly
    /// the per-request [`ShardedEngine::knn_candidates`] sets.
    pub fn knn_candidates_batch(&self, requests: &[(Rect, usize)]) -> Vec<Vec<ObjectId>> {
        if self.shards.len() == 1 {
            return self.shards[0].knn_candidates_batch(requests);
        }
        let dbs: Vec<&Database> = self.shards.iter().map(Engine::db).collect();
        let trees: Vec<&RTree<ObjectId>> = self.shards.iter().map(Engine::tree).collect();
        self.plane(&dbs, &trees).knn_candidates_batch(requests)
    }

    /// Probabilistic threshold kNN over the union of all shards,
    /// bit-identical to [`Engine::knn_threshold`] on a single engine
    /// holding the same objects (sorted by global id).
    pub fn knn_threshold(&self, q: &UncertainObject, k: usize, tau: f64) -> Vec<ThresholdResult> {
        assert!(k >= 1, "k must be positive");
        assert!((0.0..1.0).contains(&tau), "tau must be in [0, 1)");
        if self.shards.len() == 1 {
            return self.shards[0].knn_threshold(q, k, tau);
        }
        self.run_single(QueryView::Knn { q, k, tau })
    }

    /// Probabilistic threshold reverse kNN over the union, with the
    /// cross-shard veto prefilter exchange (see `crate::router`).
    pub fn rknn_threshold(&self, q: &UncertainObject, k: usize, tau: f64) -> Vec<ThresholdResult> {
        assert!(k >= 1, "k must be positive");
        assert!((0.0..1.0).contains(&tau), "tau must be in [0, 1)");
        if self.shards.len() == 1 {
            return self.shards[0].rknn_threshold(q, k, tau);
        }
        self.run_single(QueryView::Rknn { q, k, tau })
    }

    /// Top-`m` probable nearest neighbours over the union.
    pub fn top_probable_nn(&self, q: &UncertainObject, m: usize) -> Vec<ThresholdResult> {
        assert!(m >= 1, "m must be positive");
        if self.shards.len() == 1 {
            return self.shards[0].top_probable_nn(q, m);
        }
        self.run_single(QueryView::TopM { q, m })
    }

    /// Executes a mixed [`QueryBatch`] through one shared cross-shard
    /// pass: per-query merged candidate streams, the router's
    /// persistent decomposition cache, and query-level fan-out over the
    /// router pool's [`IdcaConfig::batch_threads`] lanes. One result
    /// vector per query, aligned with insertion order, each exactly
    /// what the per-query entry point returns.
    pub fn run_batch(&self, batch: &QueryBatch) -> Vec<Vec<ThresholdResult>> {
        if self.shards.len() == 1 {
            return self.shards[0].run_batch(batch);
        }
        let views: Vec<QueryView<'_>> = batch.queries().iter().map(|spec| spec.view()).collect();
        let dbs: Vec<&Database> = self.shards.iter().map(Engine::db).collect();
        let trees: Vec<&RTree<ObjectId>> = self.shards.iter().map(Engine::tree).collect();
        let ctx = self.ctx();
        let out = self.plane(&dbs, &trees).run_views(&views, &ctx);
        self.trim_cache();
        out
    }

    /// One query through the cross-shard batch pipeline.
    fn run_single(&self, view: QueryView<'_>) -> Vec<ThresholdResult> {
        let dbs: Vec<&Database> = self.shards.iter().map(Engine::db).collect();
        let trees: Vec<&RTree<ObjectId>> = self.shards.iter().map(Engine::tree).collect();
        let ctx = self.ctx();
        let mut out = self.plane(&dbs, &trees).run_views(&[view], &ctx);
        self.trim_cache();
        out.pop().expect("one result set per query")
    }

    /// The borrowed cross-shard plane for one call.
    fn plane<'a>(
        &'a self,
        dbs: &'a [&'a Database],
        trees: &'a [&'a RTree<ObjectId>],
    ) -> ShardRef<'a> {
        ShardRef {
            dbs,
            trees,
            cfg: &self.cfg,
            pool: &self.pool,
            scratch: &self.scratch,
            stats: &self.stats,
        }
    }

    /// The shared context for one cross-shard call (mirrors
    /// `Engine::ctx`: persistent router cache when cross-batch caching
    /// is on, fresh per-call cache when off).
    fn ctx(&self) -> SharedRefineCtx {
        if self.cfg.decomp_cache_entries == 0 {
            SharedRefineCtx::from_parts(
                Arc::new(DecompCache::new(self.cfg.split_strategy)),
                Arc::clone(&self.scratch),
            )
        } else {
            SharedRefineCtx::from_parts(Arc::clone(&self.decomps), Arc::clone(&self.scratch))
        }
    }

    /// Post-call LRU trim of the router cache.
    fn trim_cache(&self) {
        if self.cfg.decomp_cache_entries > 0 {
            self.decomps.trim(self.cfg.decomp_cache_entries);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use udb_geometry::Point;
    use udb_workload::SyntheticConfig;

    fn db(n: usize) -> Database {
        SyntheticConfig {
            n,
            max_extent: 0.02,
            ..Default::default()
        }
        .generate()
    }

    #[test]
    fn sharded_engine_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<ShardedEngine>();
    }

    #[test]
    fn global_ids_track_arrival_order() {
        let mut engine = ShardedEngine::new(db(7), 4);
        // seeding distributed ids 0..7 round-robin; the next arrivals
        // continue the sequence
        for expect in 7u32..23 {
            let id = engine.insert(UncertainObject::certain(Point::from([expect as f64, 0.0])));
            assert_eq!(id, ObjectId(expect));
        }
        assert_eq!(engine.len(), 23);
        // removals tombstone the global id without disturbing the rest
        engine.remove(ObjectId(5));
        assert!(!engine.contains(ObjectId(5)));
        assert_eq!(
            engine.insert(UncertainObject::certain(Point::from([23.0, 0.0]))),
            ObjectId(23)
        );
    }

    #[test]
    fn one_shard_delegates_to_plain_engine() {
        let engine = ShardedEngine::new(db(40), 1);
        let q = UncertainObject::certain(Point::from([0.5, 0.5]));
        let hits = engine.knn_threshold(&q, 2, 0.3);
        assert!(!hits.is_empty());
        // the router plane was never assembled: its stats never move
        assert_eq!(engine.refine_stats().rounds(), 0);
        assert!(engine.shards()[0].refine_stats().rounds() > 0);
    }

    #[test]
    fn sharded_matches_single_engine_smoke() {
        let base = db(60);
        let single = Engine::new(base.clone());
        let sharded = ShardedEngine::new(base, 4);
        let q = UncertainObject::certain(Point::from([0.4, 0.6]));
        assert_eq!(
            single.knn_threshold(&q, 3, 0.25),
            sharded.knn_threshold(&q, 3, 0.25)
        );
        assert_eq!(
            single.rknn_threshold(&q, 2, 0.25),
            sharded.rknn_threshold(&q, 2, 0.25)
        );
        assert_eq!(
            single.top_probable_nn(&q, 2),
            sharded.top_probable_nn(&q, 2)
        );
        let mut a = single.knn_candidates(q.mbr(), 3);
        let mut b = sharded.knn_candidates(q.mbr(), 3);
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "contiguous")]
    fn sharding_a_tombstoned_database_panics() {
        let mut base = db(10);
        base.remove(ObjectId(3));
        let _ = ShardedEngine::new(base, 2);
    }
}
