//! The uncertain object type.

use rand::Rng;
use serde::{Deserialize, Serialize};
use udb_geometry::{Point, Rect};
use udb_pdf::Pdf;

/// Identifier of an object inside a [`crate::Database`] (its position in
/// the object vector).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ObjectId(pub u32);

impl ObjectId {
    /// The id as an index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for ObjectId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "o{}", self.0)
    }
}

/// A multi-attribute object whose attribute vector is a random variable
/// with a bounded density (Definition 1), optionally carrying existential
/// uncertainty (`P(object exists) < 1`, §I-A).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct UncertainObject {
    pdf: Pdf,
    /// Cached minimal bounding rectangle of the PDF support.
    mbr: Rect,
    /// `P(object exists)`; `1.0` for the paper's main setting.
    existence: f64,
}

impl UncertainObject {
    /// Creates an object that certainly exists.
    pub fn new(pdf: Pdf) -> Self {
        let mbr = pdf.support().clone();
        UncertainObject {
            pdf,
            mbr,
            existence: 1.0,
        }
    }

    /// Creates an existentially uncertain object (`0 < existence <= 1`).
    ///
    /// # Panics
    /// Panics if `existence` is outside `(0, 1]`.
    pub fn with_existence(pdf: Pdf, existence: f64) -> Self {
        assert!(
            existence > 0.0 && existence <= 1.0,
            "existence probability must be in (0, 1]"
        );
        let mbr = pdf.support().clone();
        UncertainObject {
            pdf,
            mbr,
            existence,
        }
    }

    /// A certain point object (degenerate uncertainty region).
    pub fn certain(p: Point) -> Self {
        UncertainObject::new(Pdf::uniform(Rect::from_point(&p)))
    }

    /// The object's density.
    #[inline]
    pub fn pdf(&self) -> &Pdf {
        &self.pdf
    }

    /// The uncertainty region (minimal bounding rectangle of the PDF).
    #[inline]
    pub fn mbr(&self) -> &Rect {
        &self.mbr
    }

    /// Number of dimensions.
    #[inline]
    pub fn dims(&self) -> usize {
        self.mbr.dims()
    }

    /// `P(object exists)`.
    #[inline]
    pub fn existence(&self) -> f64 {
        self.existence
    }

    /// Whether the object has a degenerate (point) uncertainty region.
    pub fn is_certain(&self) -> bool {
        self.mbr.is_point()
    }

    /// Samples a position (conditioned on existence).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Point {
        self.pdf.sample(rng)
    }

    /// Expected position.
    pub fn mean(&self) -> Point {
        self.pdf.mean()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use udb_geometry::Interval;

    #[test]
    fn new_caches_mbr() {
        let r = Rect::new(vec![Interval::new(0.0, 1.0), Interval::new(2.0, 3.0)]);
        let o = UncertainObject::new(Pdf::uniform(r.clone()));
        assert_eq!(o.mbr(), &r);
        assert_eq!(o.dims(), 2);
        assert_eq!(o.existence(), 1.0);
        assert!(!o.is_certain());
    }

    #[test]
    fn certain_object_is_point() {
        let o = UncertainObject::certain(Point::from([1.0, 2.0]));
        assert!(o.is_certain());
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(o.sample(&mut rng), Point::from([1.0, 2.0]));
        assert_eq!(o.mean(), Point::from([1.0, 2.0]));
    }

    #[test]
    fn existence_probability_stored() {
        let o = UncertainObject::with_existence(
            Pdf::uniform(Rect::from_point(&Point::from([0.0]))),
            0.4,
        );
        assert_eq!(o.existence(), 0.4);
    }

    #[test]
    #[should_panic(expected = "existence probability")]
    fn zero_existence_rejected() {
        let _ = UncertainObject::with_existence(
            Pdf::uniform(Rect::from_point(&Point::from([0.0]))),
            0.0,
        );
    }

    #[test]
    fn object_id_display_and_index() {
        let id = ObjectId(42);
        assert_eq!(id.index(), 42);
        assert_eq!(id.to_string(), "o42");
    }
}
