//! Progressive kd-tree decomposition of object PDFs (§V of the paper).
//!
//! "We can iteratively split each object X by means of a median-split-based
//! bisection method and use a kd-tree to hierarchically organize the
//! resulting partitions." Every node splits at the (conditional) median of
//! the node's distribution along a chosen axis, so a node at level `l`
//! carries (close to) `0.5^l` probability mass; the exact mass is stored
//! per node because discrete models cannot always be halved exactly.
//!
//! The tree height is bounded by the caller (the IDCA loop deepens one
//! level per iteration); a leaf that cannot make progress in any axis
//! (degenerate region, single discrete alternative) stays a leaf.

use udb_geometry::Rect;
use udb_pdf::{Pdf, MASS_EPSILON};

/// How the split axis of a node is chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SplitStrategy {
    /// Cycle through the axes by depth (classic kd-tree).
    RoundRobin,
    /// Split the longest extent of the node's tightened MBR (default; gives
    /// better-shaped partitions for elongated regions).
    #[default]
    LongestExtent,
}

/// One disjoint subregion of an object's uncertainty region together with
/// the probability that the object lies inside it — the `X' ∈ X` with
/// `P(x ∈ X')` of Lemma 1.
#[derive(Debug, Clone)]
pub struct Partition {
    /// Tight bounding box of the partition's probability mass.
    pub mbr: Rect,
    /// `P(object ∈ mbr)`.
    pub mass: f64,
}

#[derive(Debug, Clone)]
struct Node {
    /// Tight bounding box of the mass assigned to this node.
    mbr: Rect,
    /// Absolute probability mass.
    mass: f64,
    /// Depth of this node (root = 0).
    depth: usize,
    /// Child nodes (empty for leaves; at most 2).
    children: Vec<Node>,
    /// Marked when no axis can make splitting progress.
    unsplittable: bool,
}

impl Node {
    fn is_leaf(&self) -> bool {
        self.children.is_empty()
    }
}

/// The progressive decomposition of one object's PDF.
#[derive(Debug, Clone)]
pub struct Decomposition {
    root: Node,
    depth: usize,
    strategy: SplitStrategy,
}

impl Decomposition {
    /// Starts a decomposition at depth 0 (the whole uncertainty region, one
    /// partition of mass 1).
    pub fn new(pdf: &Pdf) -> Self {
        Decomposition::with_strategy(pdf, SplitStrategy::default())
    }

    /// Starts a decomposition with an explicit split strategy.
    pub fn with_strategy(pdf: &Pdf, strategy: SplitStrategy) -> Self {
        let support = pdf.support().clone();
        let mbr = pdf.tighten(&support).unwrap_or(support);
        Decomposition {
            root: Node {
                mbr,
                mass: 1.0,
                depth: 0,
                children: Vec::new(),
                unsplittable: false,
            },
            depth: 0,
            strategy,
        }
    }

    /// Current depth (number of completed [`Decomposition::expand`] calls
    /// that made progress).
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Splits every splittable leaf once. Returns `true` if at least one
    /// leaf was split (i.e. the decomposition got strictly finer).
    pub fn expand(&mut self, pdf: &Pdf) -> bool {
        let strategy = self.strategy;
        let progressed = Self::expand_node(&mut self.root, pdf, strategy);
        if progressed {
            self.depth += 1;
        }
        progressed
    }

    /// Like [`Decomposition::expand`], but additionally reports lineage:
    /// on progress, returns for each partition of the *new*
    /// [`Decomposition::partitions`] order the index of the partition it
    /// descended from in the *previous* order (split leaves contribute two
    /// consecutive entries with the same parent index, surviving leaves
    /// map through unchanged). `None` when nothing could be split.
    ///
    /// Incremental consumers (the IDCA snapshot cache) use the map to
    /// carry per-partition results across an expansion instead of
    /// invalidating everything keyed on partition indices.
    pub fn expand_with_map(&mut self, pdf: &Pdf) -> Option<Vec<u32>> {
        let strategy = self.strategy;
        let mut map = Vec::with_capacity(count_leaves(&self.root) * 2);
        let mut old_idx = 0u32;
        let progressed =
            Self::expand_node_tracked(&mut self.root, pdf, strategy, &mut old_idx, &mut map);
        if progressed {
            self.depth += 1;
            Some(map)
        } else {
            None
        }
    }

    /// Expands until `depth` (or until no further progress is possible).
    pub fn expand_to(&mut self, pdf: &Pdf, depth: usize) {
        while self.depth < depth && self.expand(pdf) {}
    }

    fn expand_node(node: &mut Node, pdf: &Pdf, strategy: SplitStrategy) -> bool {
        if !node.is_leaf() {
            let mut any = false;
            for c in &mut node.children {
                any |= Self::expand_node(c, pdf, strategy);
            }
            return any;
        }
        if node.unsplittable || node.mass <= MASS_EPSILON {
            return false;
        }
        match split_leaf(node, pdf, strategy) {
            Some(children) => {
                node.children = children;
                true
            }
            None => {
                node.unsplittable = true;
                false
            }
        }
    }

    /// [`Decomposition::expand_node`] plus lineage tracking. Visits leaves
    /// in the same DFS order as [`collect_leaves`] (skipping the same
    /// zero-mass leaves) so `old_idx` counts previous partition indices
    /// and `map` fills in new partition order.
    fn expand_node_tracked(
        node: &mut Node,
        pdf: &Pdf,
        strategy: SplitStrategy,
        old_idx: &mut u32,
        map: &mut Vec<u32>,
    ) -> bool {
        if !node.is_leaf() {
            let mut any = false;
            for c in &mut node.children {
                any |= Self::expand_node_tracked(c, pdf, strategy, old_idx, map);
            }
            return any;
        }
        if node.mass <= MASS_EPSILON {
            // not part of the partitions() order, before or after
            return false;
        }
        let my_idx = *old_idx;
        *old_idx += 1;
        if node.unsplittable {
            map.push(my_idx);
            return false;
        }
        match split_leaf(node, pdf, strategy) {
            Some(children) => {
                node.children = children;
                map.push(my_idx);
                map.push(my_idx);
                true
            }
            None => {
                node.unsplittable = true;
                map.push(my_idx);
                false
            }
        }
    }

    /// The current partitions (leaves with positive mass). Masses sum to
    /// (approximately) one.
    pub fn partitions(&self) -> Vec<Partition> {
        let mut out = Vec::with_capacity(1 << self.depth.min(20));
        collect_leaves(&self.root, &mut out);
        out
    }

    /// Number of current leaves with positive mass.
    pub fn leaf_count(&self) -> usize {
        count_leaves(&self.root)
    }
}

/// Counts leaves with positive mass without materializing [`Partition`]s
/// (the same nodes [`collect_leaves`] would emit).
fn count_leaves(node: &Node) -> usize {
    if node.is_leaf() {
        return usize::from(node.mass > MASS_EPSILON);
    }
    node.children.iter().map(count_leaves).sum()
}

fn collect_leaves(node: &Node, out: &mut Vec<Partition>) {
    if node.is_leaf() {
        if node.mass > MASS_EPSILON {
            out.push(Partition {
                mbr: node.mbr.clone(),
                mass: node.mass,
            });
        }
        return;
    }
    for c in &node.children {
        collect_leaves(c, out);
    }
}

/// Tries to split a leaf at the conditional median; returns the children
/// or `None` when no axis makes progress.
fn split_leaf(node: &Node, pdf: &Pdf, strategy: SplitStrategy) -> Option<Vec<Node>> {
    let d = node.mbr.dims();
    // axis preference order per strategy
    let first_axis = match strategy {
        SplitStrategy::RoundRobin => node.depth % d,
        SplitStrategy::LongestExtent => node.mbr.longest_extent().0,
    };
    for off in 0..d {
        let axis = (first_axis + off) % d;
        let iv = node.mbr.dim(axis);
        if iv.is_degenerate() {
            continue;
        }
        let x = pdf.split_coordinate(&node.mbr, axis);
        if x <= iv.lo() || x >= iv.hi() {
            // median collapses onto the boundary: a single cut cannot
            // separate mass along this axis — for discrete models a cut AT
            // the boundary may still be useful (all mass strictly below the
            // upper bound), so retry with the exact boundary handled below
            if !(x > iv.lo() && x <= iv.hi()) {
                continue;
            }
        }
        let below = pdf.mass_below(&node.mbr, axis, x);
        let above = node.mass - below;
        if below <= MASS_EPSILON || above <= MASS_EPSILON {
            continue; // no mass separation — try another axis
        }
        // lower child's region is half-open in `axis` (realized by nudging
        // the closed bound just below the cut) so that discrete mass
        // sitting exactly on the cut belongs to the upper child only
        let (lo_region, hi_region) = half_open_split(&node.mbr, axis, x);
        let lo_mbr = pdf.tighten(&lo_region).unwrap_or(lo_region);
        let hi_mbr = pdf.tighten(&hi_region).unwrap_or(hi_region);
        return Some(vec![
            Node {
                mbr: lo_mbr,
                mass: below,
                depth: node.depth + 1,
                children: Vec::new(),
                unsplittable: false,
            },
            Node {
                mbr: hi_mbr,
                mass: above,
                depth: node.depth + 1,
                children: Vec::new(),
                unsplittable: false,
            },
        ]);
    }
    None
}

/// Splits `region` at `x` along `axis` into a lower part whose upper bound
/// is nudged strictly below `x` and an upper part `[x, hi]`.
fn half_open_split(region: &Rect, axis: usize, x: f64) -> (Rect, Rect) {
    let iv = region.dim(axis);
    let lo_hi = next_down(x).max(iv.lo());
    let mut lo_dims = region.intervals().to_vec();
    let mut hi_dims = region.intervals().to_vec();
    lo_dims[axis] = udb_geometry::Interval::new(iv.lo(), lo_hi);
    hi_dims[axis] = udb_geometry::Interval::new(x.min(iv.hi()), iv.hi());
    (Rect::new(lo_dims), Rect::new(hi_dims))
}

/// Largest float strictly below `x` (stable replacement for the unstable
/// `f64::next_down` of older toolchains; `f64::next_down` is stable on the
/// workspace toolchain but this keeps the intent explicit).
#[inline]
fn next_down(x: f64) -> f64 {
    f64::next_down(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use udb_geometry::{Interval, Point};
    use udb_pdf::{DiscretePdf, GaussianPdf};

    fn unit_square() -> Rect {
        Rect::new(vec![Interval::new(0.0, 1.0), Interval::new(0.0, 1.0)])
    }

    fn mass_sum(parts: &[Partition]) -> f64 {
        parts.iter().map(|p| p.mass).sum()
    }

    #[test]
    fn depth_zero_is_single_partition() {
        let pdf = Pdf::uniform(unit_square());
        let dec = Decomposition::new(&pdf);
        let parts = dec.partitions();
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0].mass, 1.0);
        assert_eq!(parts[0].mbr, unit_square());
    }

    #[test]
    fn uniform_masses_halve_per_level() {
        let pdf = Pdf::uniform(unit_square());
        let mut dec = Decomposition::new(&pdf);
        for level in 1..=4 {
            assert!(dec.expand(&pdf));
            let parts = dec.partitions();
            assert_eq!(parts.len(), 1 << level);
            for p in &parts {
                assert!(
                    (p.mass - 0.5f64.powi(level)).abs() < 1e-9,
                    "level {level} mass {}",
                    p.mass
                );
            }
            assert!((mass_sum(&parts) - 1.0).abs() < 1e-9);
        }
        assert_eq!(dec.depth(), 4);
    }

    #[test]
    fn partitions_are_disjoint_and_cover() {
        let pdf = Pdf::uniform(unit_square());
        let mut dec = Decomposition::new(&pdf);
        dec.expand_to(&pdf, 3);
        let parts = dec.partitions();
        // pairwise interiors are disjoint: intersection volume must be 0
        for i in 0..parts.len() {
            for j in (i + 1)..parts.len() {
                if let Some(ov) = parts[i].mbr.intersection(&parts[j].mbr) {
                    assert!(ov.volume() < 1e-9, "overlap between {i} and {j}");
                }
            }
        }
        // total volume equals the support volume (uniform pdf: tight mbrs)
        let vol: f64 = parts.iter().map(|p| p.mbr.volume()).sum();
        assert!((vol - 1.0).abs() < 1e-6);
    }

    #[test]
    fn gaussian_masses_approximately_halve() {
        let pdf: Pdf = GaussianPdf::isotropic(Point::from([0.5, 0.5]), 0.2, unit_square()).into();
        let mut dec = Decomposition::new(&pdf);
        dec.expand_to(&pdf, 2);
        let parts = dec.partitions();
        assert_eq!(parts.len(), 4);
        for p in &parts {
            assert!((p.mass - 0.25).abs() < 1e-4, "mass {}", p.mass);
        }
        assert!((mass_sum(&parts) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn point_object_is_unsplittable() {
        let pdf = Pdf::uniform(Rect::from_point(&Point::from([0.3, 0.4])));
        let mut dec = Decomposition::new(&pdf);
        assert!(!dec.expand(&pdf));
        assert_eq!(dec.depth(), 0);
        assert_eq!(dec.leaf_count(), 1);
    }

    #[test]
    fn discrete_pdf_splits_exactly() {
        let pdf: Pdf = DiscretePdf::equally_weighted(vec![
            Point::from([0.0, 0.0]),
            Point::from([1.0, 0.0]),
            Point::from([0.0, 1.0]),
            Point::from([1.0, 1.0]),
        ])
        .into();
        let mut dec = Decomposition::new(&pdf);
        assert!(dec.expand(&pdf));
        let parts = dec.partitions();
        assert_eq!(parts.len(), 2);
        for p in &parts {
            assert!((p.mass - 0.5).abs() < 1e-12);
        }
        assert!((mass_sum(&parts) - 1.0).abs() < 1e-12);
        // second expansion separates the remaining axis
        assert!(dec.expand(&pdf));
        let parts = dec.partitions();
        assert_eq!(parts.len(), 4);
        for p in &parts {
            assert!((p.mass - 0.25).abs() < 1e-12);
            assert!(p.mbr.is_point(), "leaf should be a single alternative");
        }
    }

    #[test]
    fn discrete_decomposition_terminates() {
        let pdf: Pdf = DiscretePdf::equally_weighted(vec![
            Point::from([0.0, 0.0]),
            Point::from([1.0, 1.0]),
            Point::from([2.0, 0.5]),
        ])
        .into();
        let mut dec = Decomposition::new(&pdf);
        // after enough expansions every leaf is a single alternative and
        // expand() must return false
        for _ in 0..10 {
            if !dec.expand(&pdf) {
                break;
            }
        }
        assert!(!dec.expand(&pdf));
        let parts = dec.partitions();
        assert_eq!(parts.len(), 3);
        assert!((mass_sum(&parts) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn duplicate_alternatives_do_not_loop_forever() {
        // two alternatives at the same location cannot be separated
        let pdf: Pdf = DiscretePdf::equally_weighted(vec![
            Point::from([1.0, 1.0]),
            Point::from([1.0, 1.0]),
            Point::from([2.0, 2.0]),
        ])
        .into();
        let mut dec = Decomposition::new(&pdf);
        for _ in 0..10 {
            if !dec.expand(&pdf) {
                break;
            }
        }
        let parts = dec.partitions();
        // the duplicated location stays one partition with mass 2/3
        assert_eq!(parts.len(), 2);
        let mut masses: Vec<f64> = parts.iter().map(|p| p.mass).collect();
        masses.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!((masses[0] - 1.0 / 3.0).abs() < 1e-12);
        assert!((masses[1] - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn round_robin_strategy_cycles_axes() {
        let wide = Rect::new(vec![Interval::new(0.0, 10.0), Interval::new(0.0, 1.0)]);
        let pdf = Pdf::uniform(wide);
        let mut dec = Decomposition::with_strategy(&pdf, SplitStrategy::RoundRobin);
        dec.expand(&pdf); // splits axis 0
        dec.expand(&pdf); // splits axis 1
        let parts = dec.partitions();
        assert_eq!(parts.len(), 4);
        for p in &parts {
            assert!((p.mbr.extent(0) - 5.0).abs() < 1e-9);
            assert!((p.mbr.extent(1) - 0.5).abs() < 1e-9);
        }
    }

    #[test]
    fn longest_extent_strategy_prefers_wide_axis() {
        let wide = Rect::new(vec![Interval::new(0.0, 10.0), Interval::new(0.0, 1.0)]);
        let pdf = Pdf::uniform(wide);
        let mut dec = Decomposition::with_strategy(&pdf, SplitStrategy::LongestExtent);
        dec.expand(&pdf);
        dec.expand(&pdf); // still axis 0 (extent 5 > 1)
        let parts = dec.partitions();
        for p in &parts {
            assert!((p.mbr.extent(0) - 2.5).abs() < 1e-9);
            assert!((p.mbr.extent(1) - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn expand_with_map_tracks_lineage() {
        let pdf = Pdf::uniform(unit_square());
        let mut dec = Decomposition::new(&pdf);
        // depth 0 -> 1: one leaf splits in two
        let map = dec.expand_with_map(&pdf).expect("progress");
        assert_eq!(map, vec![0, 0]);
        // depth 1 -> 2: both leaves split
        let map = dec.expand_with_map(&pdf).expect("progress");
        assert_eq!(map, vec![0, 0, 1, 1]);
        assert_eq!(dec.leaf_count(), 4);
    }

    #[test]
    fn expand_with_map_mixes_split_and_exhausted_leaves() {
        // three discrete alternatives: after one split one leaf is a point
        // (unsplittable) and the other splits again
        let pdf: Pdf = DiscretePdf::equally_weighted(vec![
            Point::from([0.0, 0.0]),
            Point::from([1.0, 0.0]),
            Point::from([2.0, 0.0]),
        ])
        .into();
        let mut dec = Decomposition::new(&pdf);
        let map = dec.expand_with_map(&pdf).expect("progress");
        assert_eq!(map, vec![0, 0]);
        let parts_before = dec.partitions();
        let map = dec.expand_with_map(&pdf).expect("progress");
        let parts_after = dec.partitions();
        assert_eq!(map.len(), parts_after.len());
        // masses must be conserved along the lineage
        let mut regrouped = vec![0.0; parts_before.len()];
        for (child, &parent) in parts_after.iter().zip(map.iter()) {
            regrouped[parent as usize] += child.mass;
            // children stay inside their parent region
            assert!(parts_before[parent as usize].mbr.contains_rect(&child.mbr));
        }
        for (got, want) in regrouped.iter().zip(parts_before.iter()) {
            assert!((got - want.mass).abs() < 1e-12);
        }
        // exhausted decomposition reports no progress
        while dec.expand_with_map(&pdf).is_some() {}
        assert!(dec.expand_with_map(&pdf).is_none());
    }

    #[test]
    fn expand_and_expand_with_map_agree() {
        let pdf: Pdf = GaussianPdf::isotropic(Point::from([0.5, 0.5]), 0.2, unit_square()).into();
        let mut a = Decomposition::new(&pdf);
        let mut b = Decomposition::new(&pdf);
        for _ in 0..4 {
            let pa = a.expand(&pdf);
            let pb = b.expand_with_map(&pdf).is_some();
            assert_eq!(pa, pb);
            let (qa, qb) = (a.partitions(), b.partitions());
            assert_eq!(qa.len(), qb.len());
            for (x, y) in qa.iter().zip(qb.iter()) {
                assert_eq!(x.mbr, y.mbr);
                assert_eq!(x.mass, y.mass);
            }
        }
    }

    #[test]
    fn expand_to_stops_at_depth() {
        let pdf = Pdf::uniform(unit_square());
        let mut dec = Decomposition::new(&pdf);
        dec.expand_to(&pdf, 5);
        assert_eq!(dec.depth(), 5);
        assert_eq!(dec.leaf_count(), 32);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;
        use udb_pdf::GaussianPdf;

        fn arb_pdf() -> impl Strategy<Value = Pdf> {
            (
                -5.0..5.0f64,
                -5.0..5.0f64,
                0.05..2.0f64,
                0.05..2.0f64,
                0..3u8,
            )
                .prop_map(|(cx, cy, hx, hy, kind)| {
                    let center = Point::from([cx, cy]);
                    let support = Rect::centered(&center, &[hx, hy]);
                    match kind {
                        0 => Pdf::uniform(support),
                        1 => GaussianPdf::new(center, vec![hx / 2.0, hy / 2.0], support).into(),
                        _ => udb_pdf::DiscretePdf::equally_weighted(vec![
                            Point::from([cx - hx / 2.0, cy]),
                            Point::from([cx + hx / 2.0, cy - hy / 2.0]),
                            Point::from([cx, cy + hy / 2.0]),
                        ])
                        .into(),
                    }
                })
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(32))]
            /// At every depth: masses sum to one, every partition carries
            /// positive mass, and partitions nest inside the support.
            #[test]
            fn prop_masses_partition_unity(pdf in arb_pdf(), depth in 0usize..5) {
                let mut dec = Decomposition::new(&pdf);
                dec.expand_to(&pdf, depth);
                let parts = dec.partitions();
                let total: f64 = parts.iter().map(|p| p.mass).sum();
                prop_assert!((total - 1.0).abs() < 1e-6, "total {total}");
                for p in &parts {
                    prop_assert!(p.mass > 0.0);
                    prop_assert!(pdf.support().contains_rect(&p.mbr));
                }
            }

            /// Partition interiors never overlap (pairwise intersection
            /// volume zero).
            #[test]
            fn prop_partitions_disjoint(pdf in arb_pdf(), depth in 1usize..4) {
                let mut dec = Decomposition::new(&pdf);
                dec.expand_to(&pdf, depth);
                let parts = dec.partitions();
                for i in 0..parts.len() {
                    for j in (i + 1)..parts.len() {
                        if let Some(ov) = parts[i].mbr.intersection(&parts[j].mbr) {
                            prop_assert!(ov.volume() < 1e-9, "partitions {i},{j} overlap");
                        }
                    }
                }
            }

            /// The partition masses agree with the density's own
            /// mass_in for continuous models (tight MBRs).
            #[test]
            fn prop_masses_match_density(
                cx in -2.0..2.0f64, cy in -2.0..2.0f64,
                hx in 0.1..1.0f64, hy in 0.1..1.0f64,
                depth in 1usize..4,
            ) {
                let support = Rect::centered(&Point::from([cx, cy]), &[hx, hy]);
                let pdf = Pdf::uniform(support);
                let mut dec = Decomposition::new(&pdf);
                dec.expand_to(&pdf, depth);
                for p in dec.partitions() {
                    prop_assert!((pdf.mass_in(&p.mbr) - p.mass).abs() < 1e-9);
                }
            }
        }
    }
}
