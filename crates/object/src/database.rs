//! The uncertain database `D = {o_1, ..., o_N}`.

use serde::{Deserialize, Error as SerdeError, Serialize, Value};
use udb_geometry::Rect;

use crate::object::{ObjectId, UncertainObject};

/// An in-memory uncertain database supporting in-place mutation. Object
/// ids are stable; [`Database::remove`] leaves a tombstone, so an id is
/// never reused — a removed id stays invalid forever, and every id
/// handed out by [`Database::insert`] is fresh. That stability is what
/// lets engine-level caches key on [`ObjectId`] across mutations: an id
/// either still names the same object, was explicitly replaced
/// ([`Database::replace`]), or is dead.
///
/// Id `i` lives in slot `i - base`. [`Database::compact`] reclaims the
/// *leading* run of tombstones by advancing `base` — the ids stay dead
/// (they are below `base` forever), interior tombstones stay in place
/// (dropping them would shift live ids), and `base + objects.len()`
/// (the next fresh id) is preserved, so a compacted database hands out
/// exactly the same ids as an uncompacted one.
#[derive(Debug, Clone, Default, Serialize)]
pub struct Database {
    /// Slot per not-yet-compacted object; `None` marks a removed object.
    objects: Vec<Option<UncertainObject>>,
    /// Number of live (non-tombstoned) objects.
    live: usize,
    /// Dimensionality of the stored objects, fixed by the first object
    /// ever inserted (an O(1) cache: deriving it from the first *live*
    /// object would scan the tombstone prefix on churn-heavy streams).
    dims: Option<usize>,
    /// Ids below this are compacted-away tombstones: dead forever, no
    /// slot. Slot index of id `i` is `i - base`.
    base: u32,
}

// Hand-written so stored datasets survive the tombstone and compaction
// redesigns: the pre-mutation wire format (`objects` as a plain object
// list, no `live`/`dims`/`base` fields) still loads — a missing `base`
// means 0 — and the counters are *recomputed* from the slots rather
// than trusted, so every historical shape deserializes into a
// consistent database.
impl Deserialize for Database {
    fn from_value(v: &Value) -> Result<Self, SerdeError> {
        let slots = match v.field("objects")? {
            Value::Seq(entries) => entries
                .iter()
                .map(Option::<UncertainObject>::from_value)
                .collect::<Result<Vec<_>, _>>()?,
            other => return Err(SerdeError::msg(format!("`objects`: not a list: {other:?}"))),
        };
        let base = match v.field("base") {
            Ok(b) => u32::from_value(b)?,
            Err(_) => 0,
        };
        let live = slots.iter().filter(|s| s.is_some()).count();
        let dims = slots.iter().flatten().next().map(UncertainObject::dims);
        Ok(Database {
            objects: slots,
            live,
            dims,
            base,
        })
    }
}

impl Database {
    /// An empty database.
    pub fn new() -> Self {
        Database::default()
    }

    /// Builds a database from objects.
    ///
    /// # Panics
    /// Panics if objects disagree on dimensionality.
    pub fn from_objects(objects: Vec<UncertainObject>) -> Self {
        if let Some(first) = objects.first() {
            let d = first.dims();
            assert!(
                objects.iter().all(|o| o.dims() == d),
                "all database objects must share dimensionality"
            );
        }
        let live = objects.len();
        Database {
            dims: objects.first().map(UncertainObject::dims),
            objects: objects.into_iter().map(Some).collect(),
            live,
            base: 0,
        }
    }

    /// Slot index of `id`, if the id was ever issued and not compacted
    /// away (`None` below `base`; out-of-range indices are the caller's
    /// concern, exactly like the pre-compaction direct indexing).
    fn slot(&self, id: ObjectId) -> Option<usize> {
        id.index().checked_sub(self.base as usize)
    }

    /// Appends an object, returning its (fresh, never-reused) id.
    ///
    /// # Panics
    /// Panics on dimensionality mismatch with existing objects.
    pub fn insert(&mut self, object: UncertainObject) -> ObjectId {
        if let Some(d) = self.dims() {
            assert_eq!(
                d,
                object.dims(),
                "object dimensionality must match the database"
            );
        }
        self.dims = Some(object.dims());
        let next = (self.base as usize)
            .checked_add(self.objects.len())
            .and_then(|n| u32::try_from(n).ok())
            .expect("database too large");
        let id = ObjectId(next);
        self.objects.push(Some(object));
        self.live += 1;
        id
    }

    /// Reclaims the leading run of tombstones by advancing the id base,
    /// returning how many slots were dropped. Ids stay stable: compacted
    /// ids were already dead and remain dead, live ids keep their slots
    /// (only *leading* tombstones compact — dropping interior ones would
    /// shift live ids), and the next fresh id is unchanged. Engines call
    /// this at checkpoint time, where the index is rebuilt anyway.
    pub fn compact(&mut self) -> usize {
        let lead = self.objects.iter().take_while(|s| s.is_none()).count();
        if lead > 0 {
            self.objects.drain(..lead);
            self.base += u32::try_from(lead).expect("database too large");
        }
        lead
    }

    /// Ids below this were compacted away ([`Database::compact`]); they
    /// are dead and hold no slot.
    pub fn base_id(&self) -> u32 {
        self.base
    }

    /// The id the next [`Database::insert`] will assign — equivalently,
    /// how many objects were ever inserted (ids are never reused, so the
    /// insertion count survives removals and compaction).
    pub fn next_id(&self) -> u32 {
        (self.base as usize)
            .checked_add(self.objects.len())
            .and_then(|n| u32::try_from(n).ok())
            .expect("database too large")
    }

    /// Removes an object in place, returning it. The slot becomes a
    /// tombstone: the id is invalid from here on and never reused.
    ///
    /// # Panics
    /// Panics if `id` is out of range or already removed.
    pub fn remove(&mut self, id: ObjectId) -> UncertainObject {
        let idx = self
            .slot(id)
            .unwrap_or_else(|| panic!("{id:?} already removed"));
        let slot = self
            .objects
            .get_mut(idx)
            .unwrap_or_else(|| panic!("{id:?} out of range"));
        let object = slot
            .take()
            .unwrap_or_else(|| panic!("{id:?} already removed"));
        self.live -= 1;
        object
    }

    /// Replaces the object behind a live id in place, returning the
    /// previous object. The id keeps naming the (new) object.
    ///
    /// # Panics
    /// Panics if `id` is dead or the new object's dimensionality differs.
    pub fn replace(&mut self, id: ObjectId, object: UncertainObject) -> UncertainObject {
        let old = self
            .slot(id)
            .and_then(|idx| self.objects.get_mut(idx))
            .and_then(Option::as_mut)
            .unwrap_or_else(|| panic!("{id:?} is not a live object"));
        assert_eq!(
            old.dims(),
            object.dims(),
            "object dimensionality must match the database"
        );
        std::mem::replace(old, object)
    }

    /// Whether `id` names a live object.
    pub fn contains(&self, id: ObjectId) -> bool {
        matches!(
            self.slot(id).and_then(|idx| self.objects.get(idx)),
            Some(Some(_))
        )
    }

    /// Number of live objects.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether the database holds no live objects.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Dimensionality of the stored objects (`None` when empty).
    pub fn dims(&self) -> Option<usize> {
        if self.live > 0 {
            self.dims
        } else {
            None
        }
    }

    /// The object with the given id.
    ///
    /// # Panics
    /// Panics if the id is out of range or removed.
    pub fn get(&self, id: ObjectId) -> &UncertainObject {
        let idx = self
            .slot(id)
            .unwrap_or_else(|| panic!("{id:?} was removed"));
        self.objects[idx]
            .as_ref()
            .unwrap_or_else(|| panic!("{id:?} was removed"))
    }

    /// The object with the given id, if live.
    pub fn try_get(&self, id: ObjectId) -> Option<&UncertainObject> {
        self.slot(id)
            .and_then(|idx| self.objects.get(idx))
            .and_then(Option::as_ref)
    }

    /// Iterates `(id, object)` pairs over the live objects.
    pub fn iter(&self) -> impl Iterator<Item = (ObjectId, &UncertainObject)> {
        let base = self.base;
        self.objects
            .iter()
            .enumerate()
            .filter_map(move |(i, o)| o.as_ref().map(|o| (ObjectId(base + i as u32), o)))
    }

    /// All live object ids.
    pub fn ids(&self) -> impl Iterator<Item = ObjectId> + '_ {
        self.iter().map(|(id, _)| id)
    }

    /// `(id, mbr)` pairs of the live objects, the input to spatial index
    /// construction.
    pub fn mbrs(&self) -> impl Iterator<Item = (ObjectId, &Rect)> {
        self.iter().map(|(id, o)| (id, o.mbr()))
    }
}

impl std::ops::Index<ObjectId> for Database {
    type Output = UncertainObject;
    fn index(&self, id: ObjectId) -> &UncertainObject {
        self.get(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use udb_geometry::{Interval, Point};
    use udb_pdf::Pdf;

    fn obj(x: f64) -> UncertainObject {
        UncertainObject::new(Pdf::uniform(Rect::new(vec![
            Interval::new(x, x + 1.0),
            Interval::new(0.0, 1.0),
        ])))
    }

    #[test]
    fn insert_assigns_sequential_ids() {
        let mut db = Database::new();
        assert!(db.is_empty());
        let a = db.insert(obj(0.0));
        let b = db.insert(obj(5.0));
        assert_eq!(a, ObjectId(0));
        assert_eq!(b, ObjectId(1));
        assert_eq!(db.len(), 2);
        assert_eq!(db.dims(), Some(2));
    }

    #[test]
    fn get_and_index() {
        let db = Database::from_objects(vec![obj(0.0), obj(5.0)]);
        assert_eq!(db.get(ObjectId(1)).mbr().lo(), Point::from([5.0, 0.0]));
        assert_eq!(db[ObjectId(0)].mbr().lo(), Point::from([0.0, 0.0]));
        assert!(db.try_get(ObjectId(7)).is_none());
    }

    #[test]
    fn iter_yields_ids_in_order() {
        let db = Database::from_objects(vec![obj(0.0), obj(1.0), obj(2.0)]);
        let ids: Vec<ObjectId> = db.iter().map(|(id, _)| id).collect();
        assert_eq!(ids, vec![ObjectId(0), ObjectId(1), ObjectId(2)]);
        assert_eq!(db.ids().count(), 3);
        assert_eq!(db.mbrs().count(), 3);
    }

    #[test]
    fn remove_tombstones_and_ids_are_never_reused() {
        let mut db = Database::from_objects(vec![obj(0.0), obj(1.0), obj(2.0)]);
        let gone = db.remove(ObjectId(1));
        assert_eq!(gone.mbr().lo(), Point::from([1.0, 0.0]));
        assert_eq!(db.len(), 2);
        assert!(!db.contains(ObjectId(1)));
        assert!(db.try_get(ObjectId(1)).is_none());
        let ids: Vec<ObjectId> = db.ids().collect();
        assert_eq!(ids, vec![ObjectId(0), ObjectId(2)]);
        // a fresh insert does not resurrect the removed id
        let new_id = db.insert(obj(9.0));
        assert_eq!(new_id, ObjectId(3));
        assert!(!db.contains(ObjectId(1)));
        assert_eq!(db.len(), 3);
    }

    #[test]
    fn replace_swaps_in_place() {
        let mut db = Database::from_objects(vec![obj(0.0), obj(1.0)]);
        let old = db.replace(ObjectId(0), obj(7.0));
        assert_eq!(old.mbr().lo(), Point::from([0.0, 0.0]));
        assert_eq!(db.get(ObjectId(0)).mbr().lo(), Point::from([7.0, 0.0]));
        assert_eq!(db.len(), 2);
    }

    #[test]
    #[should_panic(expected = "already removed")]
    fn double_remove_panics() {
        let mut db = Database::from_objects(vec![obj(0.0)]);
        db.remove(ObjectId(0));
        db.remove(ObjectId(0));
    }

    #[test]
    #[should_panic(expected = "not a live object")]
    fn replace_dead_id_panics() {
        let mut db = Database::from_objects(vec![obj(0.0)]);
        db.remove(ObjectId(0));
        db.replace(ObjectId(0), obj(1.0));
    }

    #[test]
    fn dims_skips_tombstones() {
        let mut db = Database::from_objects(vec![obj(0.0), obj(1.0)]);
        db.remove(ObjectId(0));
        assert_eq!(db.dims(), Some(2));
        db.remove(ObjectId(1));
        assert_eq!(db.dims(), None);
        assert!(db.is_empty());
    }

    #[test]
    fn compact_drops_leading_tombstones_only() {
        let mut db = Database::from_objects(vec![obj(0.0), obj(1.0), obj(2.0), obj(3.0)]);
        db.remove(ObjectId(0));
        db.remove(ObjectId(1));
        db.remove(ObjectId(3)); // interior-after-compaction tombstone
        assert_eq!(db.compact(), 2);
        assert_eq!(db.base_id(), 2);
        assert_eq!(db.len(), 1);
        // compacted ids stay dead, with the pre-compaction behaviour
        assert!(!db.contains(ObjectId(0)));
        assert!(db.try_get(ObjectId(1)).is_none());
        // live ids are untouched
        assert_eq!(db.get(ObjectId(2)).mbr().lo(), Point::from([2.0, 0.0]));
        assert_eq!(db.ids().collect::<Vec<_>>(), vec![ObjectId(2)]);
        // the interior tombstone did not compact (ids must not shift)
        assert_eq!(db.compact(), 0);
        // fresh ids continue exactly where they would have anyway
        assert_eq!(db.insert(obj(9.0)), ObjectId(4));
        assert_eq!(db.len(), 2);
    }

    #[test]
    #[should_panic(expected = "already removed")]
    fn compacted_id_remove_panics() {
        let mut db = Database::from_objects(vec![obj(0.0), obj(1.0)]);
        db.remove(ObjectId(0));
        db.compact();
        db.remove(ObjectId(0));
    }

    #[test]
    fn compact_round_trips_through_serde() {
        let mut db = Database::from_objects(vec![obj(0.0), obj(1.0), obj(2.0)]);
        db.remove(ObjectId(0));
        db.compact();
        let json = serde_json::to_string(&db).unwrap();
        let back: Database = serde_json::from_str(&json).unwrap();
        assert_eq!(back.base_id(), 1);
        assert_eq!(back.len(), 2);
        assert_eq!(back.ids().collect::<Vec<_>>(), db.ids().collect::<Vec<_>>());
        let mut b2 = back;
        assert_eq!(b2.insert(obj(5.0)), ObjectId(3));
    }

    #[test]
    #[should_panic(expected = "share dimensionality")]
    fn mixed_dimensionality_rejected() {
        let one_d = UncertainObject::new(Pdf::uniform(Rect::new(vec![Interval::new(0.0, 1.0)])));
        let _ = Database::from_objects(vec![obj(0.0), one_d]);
    }
}
