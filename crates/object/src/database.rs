//! The uncertain database `D = {o_1, ..., o_N}`.

use serde::{Deserialize, Serialize};
use udb_geometry::Rect;

use crate::object::{ObjectId, UncertainObject};

/// An in-memory uncertain database. Object ids are stable positions in the
/// underlying vector.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Database {
    objects: Vec<UncertainObject>,
}

impl Database {
    /// An empty database.
    pub fn new() -> Self {
        Database::default()
    }

    /// Builds a database from objects.
    ///
    /// # Panics
    /// Panics if objects disagree on dimensionality.
    pub fn from_objects(objects: Vec<UncertainObject>) -> Self {
        if let Some(first) = objects.first() {
            let d = first.dims();
            assert!(
                objects.iter().all(|o| o.dims() == d),
                "all database objects must share dimensionality"
            );
        }
        Database { objects }
    }

    /// Appends an object, returning its id.
    ///
    /// # Panics
    /// Panics on dimensionality mismatch with existing objects.
    pub fn insert(&mut self, object: UncertainObject) -> ObjectId {
        if let Some(first) = self.objects.first() {
            assert_eq!(
                first.dims(),
                object.dims(),
                "object dimensionality must match the database"
            );
        }
        let id = ObjectId(u32::try_from(self.objects.len()).expect("database too large"));
        self.objects.push(object);
        id
    }

    /// Number of objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Whether the database is empty.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Dimensionality of the stored objects (`None` when empty).
    pub fn dims(&self) -> Option<usize> {
        self.objects.first().map(UncertainObject::dims)
    }

    /// The object with the given id.
    ///
    /// # Panics
    /// Panics if the id is out of range.
    pub fn get(&self, id: ObjectId) -> &UncertainObject {
        &self.objects[id.index()]
    }

    /// The object with the given id, if present.
    pub fn try_get(&self, id: ObjectId) -> Option<&UncertainObject> {
        self.objects.get(id.index())
    }

    /// Iterates `(id, object)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ObjectId, &UncertainObject)> {
        self.objects
            .iter()
            .enumerate()
            .map(|(i, o)| (ObjectId(i as u32), o))
    }

    /// All object ids.
    pub fn ids(&self) -> impl Iterator<Item = ObjectId> {
        (0..self.objects.len() as u32).map(ObjectId)
    }

    /// `(id, mbr)` pairs, the input to spatial index construction.
    pub fn mbrs(&self) -> impl Iterator<Item = (ObjectId, &Rect)> {
        self.iter().map(|(id, o)| (id, o.mbr()))
    }
}

impl std::ops::Index<ObjectId> for Database {
    type Output = UncertainObject;
    fn index(&self, id: ObjectId) -> &UncertainObject {
        self.get(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use udb_geometry::{Interval, Point};
    use udb_pdf::Pdf;

    fn obj(x: f64) -> UncertainObject {
        UncertainObject::new(Pdf::uniform(Rect::new(vec![
            Interval::new(x, x + 1.0),
            Interval::new(0.0, 1.0),
        ])))
    }

    #[test]
    fn insert_assigns_sequential_ids() {
        let mut db = Database::new();
        assert!(db.is_empty());
        let a = db.insert(obj(0.0));
        let b = db.insert(obj(5.0));
        assert_eq!(a, ObjectId(0));
        assert_eq!(b, ObjectId(1));
        assert_eq!(db.len(), 2);
        assert_eq!(db.dims(), Some(2));
    }

    #[test]
    fn get_and_index() {
        let db = Database::from_objects(vec![obj(0.0), obj(5.0)]);
        assert_eq!(db.get(ObjectId(1)).mbr().lo(), Point::from([5.0, 0.0]));
        assert_eq!(db[ObjectId(0)].mbr().lo(), Point::from([0.0, 0.0]));
        assert!(db.try_get(ObjectId(7)).is_none());
    }

    #[test]
    fn iter_yields_ids_in_order() {
        let db = Database::from_objects(vec![obj(0.0), obj(1.0), obj(2.0)]);
        let ids: Vec<ObjectId> = db.iter().map(|(id, _)| id).collect();
        assert_eq!(ids, vec![ObjectId(0), ObjectId(1), ObjectId(2)]);
        assert_eq!(db.ids().count(), 3);
        assert_eq!(db.mbrs().count(), 3);
    }

    #[test]
    #[should_panic(expected = "share dimensionality")]
    fn mixed_dimensionality_rejected() {
        let one_d = UncertainObject::new(Pdf::uniform(Rect::new(vec![Interval::new(0.0, 1.0)])));
        let _ = Database::from_objects(vec![obj(0.0), one_d]);
    }
}
