//! Uncertain objects, uncertain databases and the kd-tree decomposition of
//! object PDFs.
//!
//! An [`UncertainObject`] pairs a bounded PDF (the model of §I-A) with its
//! minimal bounding rectangle; a [`Database`] is the collection
//! `D = {o_1..o_N}` the queries run against. The [`decomposition`] module
//! implements the progressive median-split partitioning of §V: every
//! iteration of the IDCA algorithm deepens each object's kd-tree by one
//! level, yielding disjoint subregions with known probability masses — the
//! ingredients of the probabilistic domination bounds (Lemmas 1–2).

pub mod database;
pub mod decomposition;
pub mod object;

pub use database::Database;
pub use decomposition::{Decomposition, Partition, SplitStrategy};
pub use object::{ObjectId, UncertainObject};
// Re-exported so downstream crates that work with object decompositions
// (e.g. the shared decomposition cache in udb-core) can name the density
// type without a direct udb-pdf dependency.
pub use udb_pdf::Pdf;
