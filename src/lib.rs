//! # uncertain-db
//!
//! A probabilistic-pruning library for similarity queries on uncertain
//! databases — a from-scratch Rust reproduction of Bernecker, Emrich,
//! Kriegel, Mamoulis, Renz & Züfle, *"A Novel Probabilistic Pruning
//! Approach to Speed Up Similarity Queries in Uncertain Databases"*
//! (ICDE 2011).
//!
//! The facade re-exports the workspace crates:
//!
//! * [`geometry`] — points, intervals, rectangles, `Lp` norms;
//! * [`pdf`] — bounded densities (uniform, truncated Gaussian, correlated
//!   histograms, discrete alternatives, mixtures);
//! * [`object`] — uncertain objects, databases, kd-tree decomposition;
//! * [`domination`] — the optimal & MinMax spatial domination criteria
//!   and probabilistic domination bounds;
//! * [`genfunc`] — Poisson-binomial, classic generating functions and the
//!   paper's Uncertain Generating Functions;
//! * [`index`] — an R-tree over object MBRs;
//! * [`core`] — the IDCA refinement engine and the query layer
//!   (threshold kNN/RkNN, inverse ranking, expected ranks);
//! * [`mc`] — the Monte-Carlo comparison baseline;
//! * [`workload`] — the paper's evaluation workload generators.
//!
//! ## Quickstart
//!
//! ```
//! use uncertain_db::prelude::*;
//!
//! // three uncertain objects on a line, a certain query at the origin
//! let db = Database::from_objects(vec![
//!     UncertainObject::new(Pdf::uniform(Rect::centered(
//!         &Point::from([1.0, 0.0]),
//!         &[0.2, 0.0],
//!     ))),
//!     UncertainObject::new(Pdf::uniform(Rect::centered(
//!         &Point::from([2.0, 0.0]),
//!         &[0.2, 0.0],
//!     ))),
//!     UncertainObject::certain(Point::from([3.0, 0.0])),
//! ]);
//! let q = UncertainObject::certain(Point::from([0.0, 0.0]));
//!
//! // probabilistic threshold 1NN: which objects are the nearest
//! // neighbour of q with probability > 0.5? The owned engine keeps the
//! // R-tree and a persistent decomposition cache, and mutates in place.
//! let mut engine = Engine::new(db);
//! let results = engine.knn_threshold(&q, 1, 0.5);
//! assert!(results.iter().any(|r| r.id == ObjectId(0) && r.is_hit(0.5)));
//!
//! // an arrival: no rebuild, the index follows along
//! let id = engine.insert(UncertainObject::certain(Point::from([0.4, 0.0])));
//! assert!(engine.knn_threshold(&q, 1, 0.5)[0].id == id);
//! ```

pub use udb_core as core;
pub use udb_domination as domination;
pub use udb_genfunc as genfunc;
pub use udb_geometry as geometry;
pub use udb_index as index;
pub use udb_mc as mc;
pub use udb_object as object;
pub use udb_pdf as pdf;
pub use udb_workload as workload;

/// The commonly used types in one import.
pub mod prelude {
    pub use udb_core::{
        env_shards, par_knn_threshold, refine_lockstep, refine_top_m, DomCountSnapshot,
        DurableError, Engine, ExpectedRankEntry, IdcaConfig, ObjRef, PoolHandle, Predicate,
        QueryBatch, QueryEngine, QuerySpec, RankDistribution, RecoveryReport, RefineGoal,
        RefineStats, Refiner, ResultDelta, ShardedEngine, SharedRefineCtx, StandingQuery,
        StandingSpec, StandingStats, ThresholdResult, WalRecord, WorkerPool,
    };
    pub use udb_domination::{DominationCriterion, PDomBounds};
    pub use udb_genfunc::{CountDistributionBounds, MinMaxCdf, ProbAlgebra, Ugf};
    pub use udb_geometry::{Interval, LpNorm, Point, Rect};
    pub use udb_index::RTree;
    pub use udb_mc::MonteCarlo;
    pub use udb_object::{Database, Decomposition, ObjectId, SplitStrategy, UncertainObject};
    pub use udb_pdf::{DiscretePdf, GaussianPdf, HistogramPdf, MixturePdf, Pdf, UniformPdf};
    pub use udb_workload::{
        serve_stream, serve_stream_with_report, IcebergConfig, MixCounts, QuerySet, QueryStream,
        QueryStreamConfig, ServeMode, ServeReport, StreamEngine, StreamOp, StreamQuery,
        SyntheticConfig,
    };
}
