//! Crash-and-recover walkthrough: a durable engine serves a mutating
//! query stream, gets killed by `process::abort()` at **every**
//! registered crash point (the example re-spawns itself as the victim
//! via `UDB_CRASH_POINT`), and the parent verifies each time that
//! recovery lands on a consistent, loudly-reported state — finishing
//! with a graceful shutdown + replay-free reopen.
//!
//! ```sh
//! cargo run --release --example durable_serving
//! ```
//!
//! Exits non-zero if any recovery step fails, so the CI examples job
//! doubles as a real-subprocess crash sweep on every push.

use std::path::{Path, PathBuf};
use std::process::{Command, ExitCode};
use uncertain_db::core::CrashPoint;
use uncertain_db::prelude::*;

fn cfg() -> IdcaConfig {
    IdcaConfig {
        max_iterations: 4,
        wal_sync_every: 1,
        checkpoint_every: 0, // the victim checkpoints on a script cue
        ..Default::default()
    }
}

/// The deterministic mutation script both the victim (until it dies)
/// and the verification oracle run. Returns the objects inserted.
fn script() -> Vec<UncertainObject> {
    let object_cfg = SyntheticConfig {
        n: 40,
        max_extent: 0.02,
        seed: 11,
        ..Default::default()
    };
    let db = object_cfg.generate();
    db.iter().map(|(_, o)| o.clone()).collect()
}

/// Victim mode: open the durable dir and churn through the script.
/// With `UDB_CRASH_POINT` set, `FileIo` aborts the process at the
/// armed gate — mid-write, between write and sync, mid-checkpoint…
fn victim(dir: &Path) -> ExitCode {
    let mut engine = Engine::open_with_config(dir, cfg()).expect("victim open");
    for (i, obj) in script().into_iter().enumerate() {
        engine.insert(obj);
        if i % 10 == 9 {
            engine.checkpoint().expect("victim checkpoint");
        }
    }
    // only reached when no crash point is armed for the crossed gates
    ExitCode::SUCCESS
}

/// Parent mode: for every crash point, spawn a victim armed to abort
/// there, then recover the directory and check the state is a
/// consistent prefix of the script with every degradation reported.
fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    if args.get(1).map(String::as_str) == Some("--victim") {
        return victim(Path::new(&args[2]));
    }

    let exe = std::env::current_exe().expect("own path");
    let objects = script();
    let mut failures = 0u32;

    for point in CrashPoint::ALL {
        let dir: PathBuf = std::env::temp_dir().join(format!(
            "udb-durable-serving-{}-{}",
            std::process::id(),
            point.name()
        ));
        let _ = std::fs::remove_dir_all(&dir);

        // arm a later crossing so the victim dies mid-script, not on the
        // very first gate: checkpoint gates cross once in open (the
        // checkpoint-on-open) and again at the script's cue; WAL gates
        // cross once per insert
        let spec = match point {
            CrashPoint::WalMidRecord | CrashPoint::WalBeforeSync | CrashPoint::WalAfterSync => {
                format!("{}:7", point.name())
            }
            _ => format!("{}:2", point.name()),
        };
        let status = Command::new(&exe)
            .arg("--victim")
            .arg(&dir)
            .env("UDB_CRASH_POINT", spec)
            .status()
            .expect("spawn victim");
        if status.success() {
            println!("{:<26} victim never crossed the gate — FAIL", point.name());
            failures += 1;
            continue;
        }

        match Engine::open_with_config(&dir, cfg()) {
            Ok(engine) => {
                let report = engine.recovery_report().expect("opened").clone();
                let survived = engine.mutations() as usize;
                // the crash must not fabricate state: the recovered
                // engine holds a prefix of the script, bit-identical
                // object for object
                let prefix_ok = survived <= objects.len()
                    && engine
                        .db()
                        .iter()
                        .all(|(id, got)| object_matches(&objects[id.0 as usize], got));
                if prefix_ok {
                    println!(
                        "{:<26} abort -> recovered {survived}/{} mutations \
                         (basis ckpt {:?}, {} replayed, {} warning(s))",
                        point.name(),
                        objects.len(),
                        report.checkpoint_seq,
                        report.replayed,
                        report.warnings.len()
                    );
                    for w in &report.warnings {
                        println!("{:<26}   warning: {w}", "");
                    }
                } else {
                    println!("{:<26} recovered a non-prefix state — FAIL", point.name());
                    failures += 1;
                }
            }
            Err(e) => {
                println!("{:<26} recovery failed: {e} — FAIL", point.name());
                failures += 1;
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    // and the happy path: serve a stream durably, shut down gracefully,
    // reopen with nothing to replay
    let dir =
        std::env::temp_dir().join(format!("udb-durable-serving-{}-clean", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let object_cfg = SyntheticConfig {
        n: 120,
        max_extent: 0.02,
        ..Default::default()
    };
    let stream = QueryStreamConfig {
        batches: 4,
        batch_size: 6,
        insert_weight: 0.2,
        delete_weight: 0.1,
        ..Default::default()
    }
    .generate(&object_cfg);
    let mut engine = Engine::open_with_config(&dir, cfg()).expect("serving open");
    let seed_db = object_cfg.generate();
    for (_, obj) in seed_db.iter() {
        engine.insert(obj.clone());
    }
    let (single_replies, report) =
        serve_stream_with_report(&mut engine, &stream, ServeMode::Batched).expect("durable serve");
    println!(
        "\nserved {} queries durably (+{} inserts, -{} removes), flushed: {}",
        report.queries, report.inserts, report.removes, report.flushed
    );
    let mutations = engine.mutations();
    drop(engine); // drop == crash; the handshake already checkpointed
    let reopened = Engine::open(&dir).expect("reopen after graceful shutdown");
    let recovery = reopened.recovery_report().expect("reopened").clone();
    assert_eq!(recovery.replayed, 0, "graceful shutdown left WAL records");
    assert!(recovery.warnings.is_empty(), "{recovery:?}");
    assert_eq!(reopened.mutations(), mutations);
    println!(
        "reopened replay-free at {} lifetime mutations (basis ckpt {:?})",
        reopened.mutations(),
        recovery.checkpoint_seq
    );
    let _ = std::fs::remove_dir_all(&dir);

    // The sharded variant of the same graceful story: three shards,
    // each owning its own WAL + checkpoint directory under one root
    // (`shard-0/`, `shard-1/`, …), serving the identical stream with
    // bit-identical replies, then recovering independently and
    // replay-free on reopen. (Crash isolation — a fault in one shard
    // leaving its siblings untouched — is proven per crash point in
    // tests/sharded_durability.rs.)
    let dir = std::env::temp_dir().join(format!(
        "udb-durable-serving-{}-sharded",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let mut sharded = ShardedEngine::open(&dir, cfg(), 3).expect("sharded open");
    for (_, obj) in seed_db.iter() {
        sharded.insert(obj.clone());
    }
    let (sharded_replies, report) =
        serve_stream_with_report(&mut sharded, &stream, ServeMode::Batched)
            .expect("sharded durable serve");
    assert_eq!(
        single_replies, sharded_replies,
        "sharded durable replies must be bit-identical to the single engine"
    );
    let mutations = sharded.mutations();
    drop(sharded);
    let reopened = ShardedEngine::open(&dir, cfg(), 3).expect("sharded reopen");
    for (s, recovery) in reopened.recovery_reports().into_iter().enumerate() {
        let recovery = recovery.expect("durable shard");
        assert_eq!(recovery.replayed, 0, "shard {s} left WAL records");
        assert!(recovery.warnings.is_empty(), "shard {s}: {recovery:?}");
    }
    assert_eq!(reopened.mutations(), mutations);
    println!(
        "sharded serve (3 shards): {} queries, replies bit-identical, \
         all shards reopened replay-free at {} lifetime mutations",
        report.queries,
        reopened.mutations()
    );
    let _ = std::fs::remove_dir_all(&dir);

    if failures == 0 {
        println!("\nall {} crash points recovered", CrashPoint::ALL.len());
        ExitCode::SUCCESS
    } else {
        println!("\n{failures} crash point(s) FAILED");
        ExitCode::FAILURE
    }
}

/// Bit-exact object comparison through the serde wire format (the same
/// encoding the WAL and checkpoints use).
fn object_matches(expected: &UncertainObject, got: &UncertainObject) -> bool {
    serde_json::to_string(expected).expect("encode") == serde_json::to_string(got).expect("encode")
}
