//! The owned serving engine end to end: a hot-spot-skewed stream of
//! queries *and* mutations served batch by batch, with the engine's
//! persistent decomposition cache amortizing hot objects' kd-tree
//! expansions across arrival batches.
//!
//! ```sh
//! cargo run --release --example owned_serving
//! ```

use std::time::Instant;
use uncertain_db::prelude::*;

fn main() {
    // A synthetic uncertain database (the paper's workload shape).
    let object_cfg = SyntheticConfig {
        n: 400,
        max_extent: 0.02,
        ..Default::default()
    };
    let db = object_cfg.generate();

    // A stream of arrival batches: mixed kNN / RkNN / top-m traffic plus
    // a trickle of inserts and hot-spot-skewed deletes, 80% of it
    // hammering two hot regions — many users, one working set.
    let stream = QueryStreamConfig {
        batches: 6,
        batch_size: 8,
        knn_weight: 0.45,
        rknn_weight: 0.2,
        top_m_weight: 0.15,
        insert_weight: 0.1,
        delete_weight: 0.1,
        subscribe_weight: 0.0,
        k: 4,
        tau: 0.3,
        m: 3,
        hotspots: 2,
        hotspot_fraction: 0.8,
        hotspot_spread: 0.02,
        seed: 7,
    }
    .generate(&object_cfg);
    let counts = stream.mix_counts();
    println!(
        "stream: {} ops in {} batches ({} knn, {} rknn, {} top-m, {} inserts, {} deletes)",
        counts.total(),
        stream.len(),
        counts.knn,
        counts.rknn,
        counts.top_m,
        counts.insert,
        counts.delete
    );

    let cfg = IdcaConfig {
        max_iterations: 5,
        ..Default::default()
    };

    // Warm serving (the default): the engine owns the database and keeps
    // its decomposition cache across batches; mutations maintain the
    // R-tree in place and invalidate exactly the touched objects.
    let mut warm = Engine::with_config(db.clone(), cfg.clone());
    let t = Instant::now();
    let warm_results = serve_stream(&mut warm, &stream, ServeMode::Batched);
    let warm_time = t.elapsed();
    println!(
        "\nwarm serve (cache cap {}): {:.1} ms, {} objects cached, {} live objects after churn",
        warm.config().decomp_cache_entries,
        warm_time.as_secs_f64() * 1e3,
        warm.decomp_cache_len(),
        warm.db().len(),
    );

    // Cold serving: same engine, cross-batch cache disabled — every
    // batch re-decomposes the hot objects from scratch.
    let mut cold = Engine::with_config(
        db.clone(),
        IdcaConfig {
            decomp_cache_entries: 0,
            ..cfg.clone()
        },
    );
    let t = Instant::now();
    let cold_results = serve_stream(&mut cold, &stream, ServeMode::Batched);
    let cold_time = t.elapsed();
    println!(
        "cold serve (cache off):   {:.1} ms",
        cold_time.as_secs_f64() * 1e3
    );
    assert_eq!(
        warm_results, cold_results,
        "sharing is work-only: results must be bit-identical"
    );
    println!(
        "results bit-identical; warm/cold = {:.2}",
        warm_time.as_secs_f64() / cold_time.as_secs_f64()
    );

    // Sharded serving: the same stream through a 4-shard engine —
    // mutations hash-route by global id, queries fan across per-shard
    // trees and merge under one global pruning bound. Global ids track
    // arrival order regardless of shard count, so the replies are
    // bit-identical to the single engine (asserted here, property-
    // tested in tests/sharded_equivalence.rs).
    let mut sharded = ShardedEngine::with_config(db, cfg, 4);
    let t = Instant::now();
    let sharded_results = serve_stream(&mut sharded, &stream, ServeMode::Batched);
    let sharded_time = t.elapsed();
    assert_eq!(
        warm_results, sharded_results,
        "shard routing must not move a bit"
    );
    println!(
        "sharded serve (4 shards): {:.1} ms, bit-identical; per-shard live objects {:?}",
        sharded_time.as_secs_f64() * 1e3,
        sharded
            .shards()
            .iter()
            .map(|s| s.db().len())
            .collect::<Vec<_>>(),
    );

    // The mutation API, directly: insert / update / remove, no rebuild.
    let probe = UncertainObject::certain(Point::from([0.5, 0.5]));
    let before = warm.knn_threshold(&probe, 1, 0.5);
    let id = warm.insert(UncertainObject::certain(Point::from([0.5, 0.5])));
    let after = warm.knn_threshold(&probe, 1, 0.5);
    println!(
        "\ninserted {id:?} at the probe point: 1NN hit set {} -> {}",
        before.iter().filter(|r| r.is_hit(0.5)).count(),
        after.iter().filter(|r| r.is_hit(0.5)).count(),
    );
    warm.update(
        id,
        UncertainObject::new(Pdf::uniform(Rect::centered(
            &Point::from([0.9, 0.9]),
            &[0.01, 0.01],
        ))),
    );
    warm.remove(id);
    println!(
        "updated and removed it again; {} live objects, index height {}",
        warm.db().len(),
        warm.tree().height()
    );
}
