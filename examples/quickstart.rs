//! Quickstart: build a small uncertain database, run a probabilistic
//! threshold kNN query and inspect a full domination-count refinement.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use uncertain_db::prelude::*;

fn main() {
    // An uncertain database: four sensors reporting imprecise positions.
    // Each object is a bounded density over its uncertainty rectangle.
    let db = Database::from_objects(vec![
        // sensor 0: uniform uncertainty around (1.0, 0.5)
        UncertainObject::new(Pdf::uniform(Rect::centered(
            &Point::from([1.0, 0.5]),
            &[0.3, 0.2],
        ))),
        // sensor 1: truncated Gaussian around (2.0, 0.4)
        UncertainObject::new(
            GaussianPdf::truncated_at_sigmas(Point::from([2.0, 0.4]), vec![0.15, 0.15], 3.0).into(),
        ),
        // sensor 2: correlated uncertainty (positively correlated x/y)
        UncertainObject::new(
            HistogramPdf::from_correlated_gaussian(
                Point::from([2.2, 1.2]),
                [0.2, 0.2],
                0.8,
                Rect::centered(&Point::from([2.2, 1.2]), &[0.5, 0.5]),
                16,
            )
            .into(),
        ),
        // sensor 3: an exact (certain) position
        UncertainObject::certain(Point::from([3.5, 0.0])),
    ]);

    // A certain query point.
    let q = UncertainObject::certain(Point::from([0.0, 0.0]));

    // The owned serving engine: takes the database, builds the R-tree,
    // and keeps a persistent decomposition cache across queries. The
    // scan-based QueryEngine remains available as the reference oracle.
    println!("== probabilistic threshold 2NN query (tau = 0.5) ==");
    let mut engine = Engine::new(db);
    for r in engine.knn_threshold(&q, 2, 0.5) {
        let verdict = if r.is_hit(0.5) {
            "HIT"
        } else if r.is_drop(0.5) {
            "drop"
        } else {
            "undecided"
        };
        println!(
            "  {}: P(among 2NN) in [{:.3}, {:.3}]  ({} after {} iterations)",
            r.id, r.prob_lower, r.prob_upper, verdict, r.iterations
        );
    }

    // In-place mutation: a fifth sensor comes online near the query; no
    // index rebuild, the R-tree and caches are maintained incrementally.
    println!("\n== sensor 4 comes online at (0.6, 0.2) ==");
    let new_id = engine.insert(UncertainObject::new(Pdf::uniform(Rect::centered(
        &Point::from([0.6, 0.2]),
        &[0.1, 0.1],
    ))));
    for r in engine.knn_threshold(&q, 2, 0.5) {
        if r.id == new_id && r.is_hit(0.5) {
            println!("  {}: immediately a certain 2NN member", r.id);
        }
    }
    engine.remove(new_id); // ...and goes away again, in place

    println!("\n== full domination-count refinement for sensor 1 ==");
    let mut refiner = engine.refiner(
        ObjRef::Db(ObjectId(1)),
        ObjRef::External(&q),
        Predicate::FullPdf,
    );
    println!(
        "  filter: {} certain dominators, influence set {:?}",
        refiner.complete_count(),
        refiner.influence_ids().collect::<Vec<_>>()
    );
    let mut snap = refiner.snapshot();
    println!(
        "  iteration 0: accumulated uncertainty {:.4}",
        snap.uncertainty()
    );
    while snap.uncertainty() > 1e-3 && refiner.step() {
        snap = refiner.snapshot();
        println!(
            "  iteration {}: accumulated uncertainty {:.4}",
            snap.iteration,
            snap.uncertainty()
        );
        if snap.iteration >= 8 {
            break;
        }
    }
    println!("\n  P(DomCount = k) bounds:");
    for k in 0..snap.bounds.len() {
        println!(
            "    k = {k}: [{:.4}, {:.4}]",
            snap.bounds.lower(k),
            snap.bounds.upper(k)
        );
    }
    let (lo, hi) = snap.bounds.expected_rank_bounds();
    println!("  expected rank of sensor 1 in [{lo:.3}, {hi:.3}]");
}
