//! Facility placement: probabilistic reverse kNN over uncertain customer
//! locations.
//!
//! A service point is proposed at a fixed location; customers' positions
//! are uncertain (e.g. location data released at grid precision). The
//! probabilistic threshold RkNN query of Corollary 5 asks which customers
//! would have the new facility among their k nearest service points with
//! probability above τ — the facility's probable catchment.
//!
//! ```sh
//! cargo run --release --example reverse_knn_facility
//! ```

use uncertain_db::prelude::*;

fn main() {
    // customers with uncertain positions, clustered in two neighbourhoods
    let mut objects = Vec::new();
    let clusters = [(0.3, 0.3), (0.75, 0.7)];
    for (ci, (cx, cy)) in clusters.iter().enumerate() {
        for i in 0..6 {
            let angle = i as f64 * std::f64::consts::TAU / 6.0;
            let x = cx + 0.12 * angle.cos();
            let y = cy + 0.12 * angle.sin();
            let spread = 0.02 + 0.01 * ((ci + i) % 3) as f64;
            objects.push(UncertainObject::new(Pdf::uniform(Rect::centered(
                &Point::from([x, y]),
                &[spread, spread],
            ))));
        }
    }
    let db = Database::from_objects(objects);

    // proposed facility between the clusters, slightly closer to one
    let facility = UncertainObject::certain(Point::from([0.45, 0.42]));

    let engine = QueryEngine::with_config(
        &db,
        IdcaConfig {
            max_iterations: 8,
            ..Default::default()
        },
    );

    for (k, tau) in [(1usize, 0.5f64), (2, 0.5)] {
        println!("== customers with P(facility among their {k} nearest) > {tau} ==");
        let mut res = engine.rknn_threshold(&facility, k, tau);
        res.sort_by(|a, b| b.prob_lower.partial_cmp(&a.prob_lower).unwrap());
        let mut hits = 0;
        for r in &res {
            let verdict = if r.is_hit(tau) {
                hits += 1;
                "HIT      "
            } else if r.is_drop(tau) {
                "drop     "
            } else {
                "undecided"
            };
            println!(
                "  {verdict} customer {}: P in [{:.3}, {:.3}]",
                r.id, r.prob_lower, r.prob_upper
            );
        }
        println!("  -> probable catchment: {hits} customers\n");
    }

    // sanity view: expected ranks of the facility from each customer's
    // perspective would require per-customer reference queries; show the
    // plain distance ranking instead
    let tree = RTree::bulk_load(db.mbrs().map(|(id, r)| (r.clone(), id)).collect(), 8);
    println!("closest customers by MinDist (spatial view):");
    for n in tree.knn(facility.mbr(), 5, LpNorm::L2) {
        println!("  {}: {:.4}", n.payload, n.dist);
    }
}
