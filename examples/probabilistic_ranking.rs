//! Probabilistic ranking: expected ranks, rank distributions and the
//! expected-distance pitfall.
//!
//! The paper (§II, citing [19], [25]) argues that ranking uncertain
//! objects by *expected distance* "does not adhere to the possible world
//! semantics and may thus produce very inaccurate results". This example
//! constructs exactly such a case — a bimodal object whose mean is near
//! the query while its actual positions never are — and contrasts three
//! rankings the library offers:
//!
//! 1. the expected-distance baseline (Ljosa & Singh [22] style),
//! 2. the possible-world **expected-rank** ranking (Corollary 6),
//! 3. the full **rank distributions** (probabilistic ranking, §VI).
//!
//! ```sh
//! cargo run --release --example probabilistic_ranking
//! ```

use uncertain_db::prelude::*;

fn main() {
    // a bimodal "ghost" object: mean at the origin-side, mass far away
    let ghost = UncertainObject::new(
        MixturePdf::new(vec![
            (
                1.0,
                Pdf::uniform(Rect::centered(&Point::from([-10.0, 0.0]), &[0.2, 0.2])),
            ),
            (
                1.0,
                Pdf::uniform(Rect::centered(&Point::from([10.0, 0.0]), &[0.2, 0.2])),
            ),
        ])
        .into(),
    );
    // steady objects at moderate distances
    let db = Database::from_objects(vec![
        ghost,
        UncertainObject::new(Pdf::uniform(Rect::centered(
            &Point::from([3.0, 0.0]),
            &[0.5, 0.5],
        ))),
        UncertainObject::new(Pdf::uniform(Rect::centered(
            &Point::from([4.5, 0.0]),
            &[0.5, 0.5],
        ))),
        UncertainObject::certain(Point::from([6.0, 0.0])),
    ]);
    let q = UncertainObject::certain(Point::from([0.0, 0.0]));
    let engine = QueryEngine::with_config(
        &db,
        IdcaConfig {
            max_iterations: 8,
            uncertainty_target: 1e-3,
            ..Default::default()
        },
    );

    println!("== 1. expected-distance baseline (misleading) ==");
    for (id, d) in engine.expected_distance_ranking(&q) {
        println!("  {id}: E[position] at distance {d:.2}");
    }
    println!("  -> ranks the bimodal o0 first, although it is never nearby!");

    println!("\n== 2. expected-rank ranking (possible-world semantics) ==");
    for e in engine.expected_rank_ranking(&q) {
        println!("  {}: E[rank] in [{:.2}, {:.2}]", e.id, e.lower, e.upper);
    }

    println!("\n== 3. full rank distributions ==");
    for (i, rd) in engine.ranking_distributions(&q).iter().enumerate() {
        print!("  o{i}:");
        for rank in 1..=db.len() {
            let (lo, hi) = rd.rank_bounds(rank);
            if hi > 1e-3 {
                print!("  P(r={rank})∈[{lo:.2},{hi:.2}]");
            }
        }
        println!();
    }

    println!("\n== top probable nearest neighbour ==");
    for r in engine.top_probable_nn(&q, 2) {
        println!(
            "  {}: P(1NN) in [{:.3}, {:.3}]",
            r.id, r.prob_lower, r.prob_upper
        );
    }
}
