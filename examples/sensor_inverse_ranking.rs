//! Sensor monitoring: probabilistic inverse ranking with correlated
//! attribute uncertainty.
//!
//! A new measurement arrives from a noisy sensor and we ask: *what rank
//! does this reading take among the existing readings, by similarity to a
//! reference profile?* The reading's two attributes (e.g. temperature and
//! humidity drift) are correlated, exercising the paper's general
//! dependent-attribute uncertainty model; the answer is the probabilistic
//! inverse ranking distribution of Corollary 3, bounded by IDCA instead
//! of integrated numerically.
//!
//! ```sh
//! cargo run --release --example sensor_inverse_ranking
//! ```

use uncertain_db::prelude::*;

fn main() {
    // existing readings: mostly tight uniform uncertainty
    let mut objects = Vec::new();
    for (x, y, spread) in [
        (0.20, 0.30, 0.02),
        (0.35, 0.40, 0.05),
        (0.50, 0.45, 0.03),
        (0.55, 0.60, 0.08),
        (0.70, 0.65, 0.04),
        (0.85, 0.80, 0.06),
    ] {
        objects.push(UncertainObject::new(Pdf::uniform(Rect::centered(
            &Point::from([x, y]),
            &[spread, spread],
        ))));
    }
    // the new reading: strongly correlated noise (drift affects both
    // attributes together) — a density no marginal product can express
    let new_reading = UncertainObject::new(
        HistogramPdf::from_correlated_gaussian(
            Point::from([0.52, 0.52]),
            [0.06, 0.06],
            0.9,
            Rect::centered(&Point::from([0.52, 0.52]), &[0.15, 0.15]),
            24,
        )
        .into(),
    );
    let target_id = {
        let mut db = Database::from_objects(objects);
        let id = db.insert(new_reading);
        // reference profile the ranking is measured against
        let reference = UncertainObject::certain(Point::from([0.45, 0.5]));

        let engine = QueryEngine::with_config(
            &db,
            IdcaConfig {
                max_iterations: 10,
                uncertainty_target: 1e-3,
                ..Default::default()
            },
        );
        let rd = engine.inverse_ranking(ObjRef::Db(id), ObjRef::External(&reference));

        println!("== probabilistic inverse ranking of the new reading ==");
        println!("(rank r means: r−1 existing readings are closer to the profile)\n");
        for rank in 1..=db.len() {
            let (lo, hi) = rd.rank_bounds(rank);
            if hi > 1e-4 {
                let bar = "#".repeat((hi * 40.0) as usize);
                println!("  P(rank = {rank}) in [{lo:.3}, {hi:.3}]  {bar}");
            }
        }
        let (lo, hi) = rd.expected_rank_bounds();
        println!("\nexpected rank in [{lo:.3}, {hi:.3}]");
        let (clo, chi) = rd.rank_cdf_bounds(3);
        println!("P(rank <= 3) in [{clo:.3}, {chi:.3}]");
        println!(
            "refined for {} iterations over {} influence objects",
            rd.snapshot.iteration, rd.snapshot.influence_count
        );
        id
    };
    println!("\n(new reading stored as {target_id})");
}
