//! Iceberg tracking: probabilistic kNN over the simulated IIP
//! iceberg-sightings workload (the paper's real-world scenario).
//!
//! A ship reports its position; we ask which sighted icebergs are among
//! its k nearest hazards with confidence above a threshold — exactly the
//! probabilistic threshold kNN query of §VI. Older sightings carry larger
//! positional uncertainty, so the answer is genuinely probabilistic.
//!
//! ```sh
//! cargo run --release --example iceberg_knn
//! ```

use uncertain_db::prelude::*;

fn main() {
    // the simulated 2009 sightings (6,216 in the paper; 1,200 here so the
    // example runs in seconds)
    let db = IcebergConfig {
        n: 1_200,
        ..Default::default()
    }
    .generate();
    println!("generated {} simulated iceberg sightings", db.len());

    // index the MBRs to find a busy region for the demo ship position
    let tree = RTree::bulk_load(db.mbrs().map(|(id, r)| (r.clone(), id)).collect(), 16);
    let ship = UncertainObject::certain(Point::from([0.45, 0.5]));
    let nearest = tree.knn(ship.mbr(), 5, LpNorm::L2);
    println!("\nclosest sighted icebergs by MinDist:");
    for n in &nearest {
        println!("  {}: MinDist {:.6}", n.payload, n.dist);
    }

    // probabilistic threshold 3NN with tau = 0.5
    let engine = QueryEngine::with_config(
        &db,
        IdcaConfig {
            max_iterations: 8,
            ..Default::default()
        },
    );
    let k = 3;
    let tau = 0.5;
    println!("\n== P(iceberg among {k}NN of ship) > {tau} ==");
    let mut results = engine.knn_threshold(&ship, k, tau);
    results.sort_by(|a, b| b.prob_lower.partial_cmp(&a.prob_lower).unwrap());
    for r in &results {
        let verdict = if r.is_hit(tau) {
            "HIT      "
        } else if r.is_drop(tau) {
            "drop     "
        } else {
            "undecided"
        };
        println!(
            "  {verdict} {}: P in [{:.3}, {:.3}] ({} iterations)",
            r.id, r.prob_lower, r.prob_upper, r.iterations
        );
    }
    let hits = results.iter().filter(|r| r.is_hit(tau)).count();
    println!(
        "\n{hits} certain hits out of {} candidates that survived spatial pruning",
        results.len()
    );

    // inverse ranking of the nearest sighting: where does it rank among
    // all hazards for this ship?
    let target = nearest[0].payload;
    let rd = engine.inverse_ranking(ObjRef::Db(target), ObjRef::External(&ship));
    println!("\n== inverse ranking of {target} ==");
    for rank in 1..=4 {
        let (lo, hi) = rd.rank_bounds(rank);
        if hi > 1e-4 {
            println!("  P(rank = {rank}) in [{lo:.3}, {hi:.3}]");
        }
    }
}
