//! Property suite for the durable engine's happy path: durability is
//! free of observable side effects. A WAL-backed engine answers every
//! query bit-identically to an in-memory one, and an engine recovered
//! by replay-on-open answers bit-identically to the live engine it was
//! dropped from — warm or cold caches, every query family.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::PathBuf;
use uncertain_db::prelude::*;

fn random_object(rng: &mut StdRng) -> UncertainObject {
    let cx: f64 = rng.gen_range(0.0..4.0);
    let cy: f64 = rng.gen_range(0.0..4.0);
    let hx: f64 = rng.gen_range(0.02..0.5);
    let hy: f64 = rng.gen_range(0.02..0.5);
    let center = Point::from([cx, cy]);
    let support = Rect::centered(&center, &[hx, hy]);
    let pdf: Pdf = match rng.gen_range(0..3) {
        0 => Pdf::uniform(support),
        1 => GaussianPdf::new(center, vec![hx / 2.0, hy / 2.0], support).into(),
        _ => {
            let n = rng.gen_range(2..5);
            let pts: Vec<Point> = (0..n)
                .map(|_| {
                    Point::from([
                        rng.gen_range(cx - hx..cx + hx),
                        rng.gen_range(cy - hy..cy + hy),
                    ])
                })
                .collect();
            DiscretePdf::equally_weighted(pts).into()
        }
    };
    if rng.gen_range(0..4) == 0 {
        UncertainObject::with_existence(pdf, rng.gen_range(0.3..1.0))
    } else {
        UncertainObject::new(pdf)
    }
}

fn cfg(cache: usize) -> IdcaConfig {
    IdcaConfig {
        max_iterations: 4,
        uncertainty_target: 0.0,
        decomp_cache_entries: cache,
        wal_sync_every: 1,
        checkpoint_every: 0,
        ..Default::default()
    }
}

fn test_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("udb-durab-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn assert_results_identical(a: &[ThresholdResult], b: &[ThresholdResult], ctx: &str) {
    assert_eq!(a.len(), b.len(), "{ctx}: set size diverged");
    for (ra, rb) in a.iter().zip(b.iter()) {
        assert_eq!(ra.id, rb.id, "{ctx}");
        assert_eq!(ra.prob_lower.to_bits(), rb.prob_lower.to_bits(), "{ctx}");
        assert_eq!(ra.prob_upper.to_bits(), rb.prob_upper.to_bits(), "{ctx}");
        assert_eq!(ra.iterations, rb.iterations, "{ctx}");
    }
}

/// Applies the same random mutation workload to both engines: the ids
/// line up because fresh-id assignment is deterministic.
fn churn(rng: &mut StdRng, a: &mut Engine, b: &mut Engine, steps: usize) {
    for _ in 0..steps {
        let live: Vec<ObjectId> = a.db().ids().collect();
        match rng.gen_range(0..3) {
            0 => {
                let o = random_object(rng);
                let ia = a.insert(o.clone());
                let ib = b.insert(o);
                assert_eq!(ia, ib, "id assignment diverged");
            }
            1 if live.len() > 4 => {
                let id = live[rng.gen_range(0..live.len())];
                a.remove(id);
                b.remove(id);
            }
            _ => {
                let id = live[rng.gen_range(0..live.len())];
                let o = random_object(rng);
                a.update(id, o.clone());
                b.update(id, o);
            }
        }
    }
}

/// Cross-checks every query family bit-for-bit on `queries` random
/// probes.
fn assert_same_answers(rng: &mut StdRng, a: &Engine, b: &Engine, queries: usize, ctx: &str) {
    for qi in 0..queries {
        let q = random_object(rng);
        let (k, tau) = (rng.gen_range(1..4), rng.gen_range(0.05..0.8));
        assert_results_identical(
            &a.knn_threshold(&q, k, tau),
            &b.knn_threshold(&q, k, tau),
            &format!("{ctx} q{qi} knn"),
        );
        assert_results_identical(
            &a.rknn_threshold(&q, k, tau),
            &b.rknn_threshold(&q, k, tau),
            &format!("{ctx} q{qi} rknn"),
        );
        assert_results_identical(
            &a.top_probable_nn(&q, 2),
            &b.top_probable_nn(&q, 2),
            &format!("{ctx} q{qi} top_m"),
        );
    }
}

/// (a) WAL-backed == in-memory under interleaved churn and queries: the
/// log is invisible to the query layer.
fn check_durable_equals_in_memory(seed: u64) {
    let dir = test_dir(&format!("mirror-{seed}"));
    let mut rng = StdRng::seed_from_u64(seed);
    let objects: Vec<UncertainObject> = (0..25).map(|_| random_object(&mut rng)).collect();

    let mut durable = Engine::open_with_config(&dir, cfg(1024)).expect("open durable");
    let mut memory = Engine::with_config(Database::new(), cfg(1024));
    for o in &objects {
        durable.insert(o.clone());
        memory.insert(o.clone());
    }
    for round in 0..3 {
        churn(&mut rng, &mut durable, &mut memory, 4);
        assert_same_answers(
            &mut rng,
            &durable,
            &memory,
            2,
            &format!("seed={seed} round={round}"),
        );
    }
    assert!(durable.is_durable());
    // under the UDB_WAL=1 CI shim *every* engine is durable (that is
    // the shim's whole point), so the in-memory half of the pair is
    // only in-memory when the shim is off
    let wal_shim = std::env::var("UDB_WAL")
        .ok()
        .and_then(|v| v.parse::<i64>().ok())
        .is_some_and(|v| v != 0);
    assert_eq!(memory.is_durable(), wal_shim);
    let _ = std::fs::remove_dir_all(&dir);
}

/// (b) Drop (== crash with a synced log) and reopen at any point:
/// the recovered engine answers bit-identically to the live one,
/// with a warm cache on one side and a cold cache on the other.
fn check_replay_equals_live(seed: u64) {
    let dir = test_dir(&format!("replay-{seed}"));
    let mut rng = StdRng::seed_from_u64(seed);
    let objects: Vec<UncertainObject> = (0..25).map(|_| random_object(&mut rng)).collect();

    let mut live = Engine::open_with_config(&dir, cfg(1024)).expect("open");
    let mut shadow = Engine::with_config(Database::new(), cfg(0)); // cold forever
    for o in &objects {
        live.insert(o.clone());
        shadow.insert(o.clone());
    }
    for round in 0..3 {
        churn(&mut rng, &mut live, &mut shadow, 3);
        // warm the live engine's cache so replay must prove the cache
        // holds no answer-shaping state
        let warmup = random_object(&mut rng);
        live.knn_threshold(&warmup, 2, 0.3);
        shadow.knn_threshold(&warmup, 2, 0.3);

        // every record is synced (wal_sync_every = 1): dropping here is
        // a crash that loses nothing
        drop(live);
        live = Engine::open_with_config(&dir, cfg(1024)).expect("reopen");
        let report = live.recovery_report().expect("reopened").clone();
        assert!(
            report.warnings.is_empty(),
            "seed={seed} round={round}: clean log recovered with warnings: {report:?}"
        );
        assert_eq!(live.mutations(), shadow.mutations(), "mutation counts");
        assert_same_answers(
            &mut rng,
            &live,
            &shadow,
            2,
            &format!("seed={seed} round={round} recovered"),
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// (c) Serving a mutating stream durably == serving it in memory, and
/// the graceful shutdown leaves a directory that recovers to the exact
/// post-stream state without replaying a single record.
fn check_durable_serving(seed: u64) {
    let dir = test_dir(&format!("serve-{seed}"));
    let object_cfg = SyntheticConfig {
        n: 120,
        max_extent: 0.02,
        seed,
        ..Default::default()
    };
    let db = object_cfg.generate();
    let stream = QueryStreamConfig {
        batches: 3,
        batch_size: 5,
        k: 3,
        insert_weight: 0.2,
        delete_weight: 0.1,
        seed: seed ^ 0xD15C,
        ..Default::default()
    }
    .generate(&object_cfg);

    // the durable engine starts from the same objects, inserted through
    // the WAL (open starts empty; from_objects and insert assign the
    // same sequential ids)
    let mut durable = Engine::open_with_config(&dir, cfg(1024)).expect("open");
    for (_, obj) in db.iter() {
        durable.insert(obj.clone());
    }
    let mut memory = Engine::with_config(db, cfg(1024));

    let (res_durable, rep_durable) =
        serve_stream_with_report(&mut durable, &stream, ServeMode::Batched).expect("durable serve");
    let (res_memory, rep_memory) =
        serve_stream_with_report(&mut memory, &stream, ServeMode::Batched).expect("memory serve");
    assert_eq!(res_durable, res_memory, "seed={seed}: serving diverged");
    assert_eq!(rep_durable, rep_memory, "seed={seed}: reports diverged");
    assert!(rep_durable.flushed, "shutdown handshake skipped");

    let final_mutations = durable.mutations();
    drop(durable);
    let recovered = Engine::open_with_config(&dir, cfg(1024)).expect("reopen");
    let report = recovered.recovery_report().expect("reopened");
    assert_eq!(
        report.replayed, 0,
        "graceful shutdown must leave nothing to replay: {report:?}"
    );
    assert!(report.warnings.is_empty(), "{report:?}");
    assert_eq!(recovered.mutations(), final_mutations);

    let mut rng = StdRng::seed_from_u64(seed);
    assert_same_answers(
        &mut rng,
        &recovered,
        &memory,
        2,
        &format!("seed={seed} post-serve"),
    );
    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn durable_engine_answers_like_in_memory(seed in 0u64..10_000) {
        check_durable_equals_in_memory(seed);
    }

    #[test]
    fn replay_on_open_answers_like_live_engine(seed in 0u64..10_000) {
        check_replay_equals_live(seed);
    }

    #[test]
    fn durable_serving_equals_in_memory_serving(seed in 0u64..10_000) {
        check_durable_serving(seed);
    }
}

/// Deterministic smoke checks on the report plumbing: counts add up and
/// the in-memory serve handshake still reports `flushed`.
#[test]
fn serve_report_counts_mutations() {
    let object_cfg = SyntheticConfig {
        n: 80,
        max_extent: 0.02,
        ..Default::default()
    };
    let db = object_cfg.generate();
    let stream = QueryStreamConfig {
        batches: 2,
        batch_size: 6,
        insert_weight: 0.3,
        delete_weight: 0.2,
        ..Default::default()
    }
    .generate(&object_cfg);
    let expected_inserts: u64 = stream
        .batches
        .iter()
        .flatten()
        .filter(|e| matches!(e.op, StreamOp::Insert))
        .count() as u64;
    let expected_queries: u64 = stream
        .batches
        .iter()
        .flatten()
        .filter(|e| !e.op.is_mutation())
        .count() as u64;

    let mut engine = Engine::with_config(db, cfg(1024));
    let before = engine.mutations();
    let (results, report) =
        serve_stream_with_report(&mut engine, &stream, ServeMode::Sequential).expect("serve");
    assert_eq!(results.len(), stream.batches.len());
    assert_eq!(report.inserts, expected_inserts);
    assert_eq!(report.queries, expected_queries);
    assert!(report.flushed);
    // deletes against a non-empty database all land
    assert_eq!(
        engine.mutations() - before,
        report.inserts + report.removes,
        "engine mutation counter must match the report"
    );
}
