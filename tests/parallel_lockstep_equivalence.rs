//! Determinism oracle for batch-parallel candidate refinement: the
//! lock-step early-exit drivers must produce **bit-identical** results —
//! membership, bounds, iteration counts, retirement order after the final
//! sort — at every [`IdcaConfig::candidate_threads`] lane count. Each
//! candidate's own operation sequence is untouched by the fan-out (only
//! wall-clock interleaving changes), so 1, 2 and 4 lanes must agree to
//! the last bit with the sequential depth-first driver, for all three
//! index-integrated query paths.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use uncertain_db::prelude::*;

/// A random uncertain object: mixed density families, occasional
/// existential uncertainty (mirrors the early-exit equivalence oracle).
fn random_object(rng: &mut StdRng) -> UncertainObject {
    let cx: f64 = rng.gen_range(0.0..4.0);
    let cy: f64 = rng.gen_range(0.0..4.0);
    let hx: f64 = rng.gen_range(0.02..0.5);
    let hy: f64 = rng.gen_range(0.02..0.5);
    let center = Point::from([cx, cy]);
    let support = Rect::centered(&center, &[hx, hy]);
    let pdf: Pdf = match rng.gen_range(0..3) {
        0 => Pdf::uniform(support),
        1 => GaussianPdf::new(center, vec![hx / 2.0, hy / 2.0], support).into(),
        _ => {
            let n = rng.gen_range(2..5);
            let pts: Vec<Point> = (0..n)
                .map(|_| {
                    Point::from([
                        rng.gen_range(cx - hx..cx + hx),
                        rng.gen_range(cy - hy..cy + hy),
                    ])
                })
                .collect();
            DiscretePdf::equally_weighted(pts).into()
        }
    };
    if rng.gen_range(0..4) == 0 {
        UncertainObject::with_existence(pdf, rng.gen_range(0.3..1.0))
    } else {
        UncertainObject::new(pdf)
    }
}

fn random_db(rng: &mut StdRng, n: usize) -> Database {
    Database::from_objects((0..n).map(|_| random_object(rng)).collect())
}

/// Bit-exact comparison of two result sets (no tolerances anywhere).
fn assert_bit_identical(seq: &[ThresholdResult], par: &[ThresholdResult], lanes: usize) {
    assert_eq!(par.len(), seq.len(), "lanes={lanes}: result count diverged");
    for (a, b) in par.iter().zip(seq.iter()) {
        assert_eq!(a.id, b.id, "lanes={lanes}: membership/order diverged");
        assert_eq!(
            a.prob_lower.to_bits(),
            b.prob_lower.to_bits(),
            "lanes={lanes}: lower bound diverged for {:?}",
            a.id
        );
        assert_eq!(
            a.prob_upper.to_bits(),
            b.prob_upper.to_bits(),
            "lanes={lanes}: upper bound diverged for {:?}",
            a.id
        );
        assert_eq!(
            a.iterations, b.iterations,
            "lanes={lanes}: iteration count diverged for {:?}",
            a.id
        );
    }
}

fn config_with_lanes(lanes: usize) -> IdcaConfig {
    IdcaConfig {
        max_iterations: 4,
        uncertainty_target: 0.0,
        candidate_threads: lanes,
        ..Default::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// knn_threshold: parallel rounds == sequential depth-first, bit for
    /// bit, at 2 and 4 candidate lanes.
    #[test]
    fn knn_threshold_rounds_are_lane_count_invariant(
        seed in 0u64..10_000,
        k in 1usize..5,
        tau_pct in 0usize..10,
    ) {
        let tau = tau_pct as f64 / 10.0;
        let mut rng = StdRng::seed_from_u64(0xA10 + seed);
        let n = rng.gen_range(10..24);
        let db = random_db(&mut rng, n);
        let q = random_object(&mut rng);
        let sequential =
            Engine::with_config(db.clone(), config_with_lanes(1)).knn_threshold(&q, k, tau);
        for lanes in [2usize, 4] {
            let parallel =
                Engine::with_config(db.clone(), config_with_lanes(lanes)).knn_threshold(&q, k, tau);
            assert_bit_identical(&sequential, &parallel, lanes);
        }
    }

    /// rknn_threshold: same invariance (prefilter + lock-step rounds).
    #[test]
    fn rknn_threshold_rounds_are_lane_count_invariant(
        seed in 0u64..10_000,
        k in 1usize..4,
        tau_pct in 0usize..10,
    ) {
        let tau = tau_pct as f64 / 10.0;
        let mut rng = StdRng::seed_from_u64(0xB10 + seed);
        let n = rng.gen_range(8..16);
        let db = random_db(&mut rng, n);
        let q = random_object(&mut rng);
        let sequential =
            Engine::with_config(db.clone(), config_with_lanes(1)).rknn_threshold(&q, k, tau);
        for lanes in [2usize, 4] {
            let parallel = Engine::with_config(db.clone(), config_with_lanes(lanes))
                .rknn_threshold(&q, k, tau);
            assert_bit_identical(&sequential, &parallel, lanes);
        }
    }

    /// top_probable_nn: the cross-candidate retirement between rounds
    /// merges on the calling thread — the returned set, order and bounds
    /// must not depend on the lane count.
    #[test]
    fn top_probable_nn_rounds_are_lane_count_invariant(
        seed in 0u64..10_000,
        m in 1usize..4,
    ) {
        let mut rng = StdRng::seed_from_u64(0xC10 + seed);
        let n = rng.gen_range(10..20);
        let db = random_db(&mut rng, n);
        let q = random_object(&mut rng);
        let sequential =
            Engine::with_config(db.clone(), config_with_lanes(1)).top_probable_nn(&q, m);
        for lanes in [2usize, 4] {
            let parallel =
                Engine::with_config(db.clone(), config_with_lanes(lanes)).top_probable_nn(&q, m);
            assert_bit_identical(&sequential, &parallel, lanes);
        }
    }

    /// Candidate lanes compose with snapshot lanes (nested candidate ×
    /// pair scopes on one pool): still within float-reassociation noise
    /// of the fully sequential result, and bit-identical membership.
    /// (Pair-chunk merges may reassociate float sums across *snapshot*
    /// thread counts; candidate lanes themselves never do.)
    #[test]
    fn nested_candidate_and_snapshot_lanes_compose(
        seed in 0u64..10_000,
    ) {
        let mut rng = StdRng::seed_from_u64(0xD10 + seed);
        let n = rng.gen_range(10..18);
        let db = random_db(&mut rng, n);
        let q = random_object(&mut rng);
        let sequential =
            Engine::with_config(db.clone(), config_with_lanes(1)).knn_threshold(&q, 2, 0.3);
        let nested_cfg = IdcaConfig {
            snapshot_threads: 2,
            ..config_with_lanes(2)
        };
        let nested = Engine::with_config(db.clone(), nested_cfg).knn_threshold(&q, 2, 0.3);
        prop_assert_eq!(nested.len(), sequential.len());
        for (a, b) in nested.iter().zip(sequential.iter()) {
            prop_assert_eq!(a.id, b.id);
            prop_assert!((a.prob_lower - b.prob_lower).abs() < 1e-12);
            prop_assert!((a.prob_upper - b.prob_upper).abs() < 1e-12);
        }
    }
}
