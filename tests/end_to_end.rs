//! End-to-end integration tests over the public facade: full query
//! pipelines on both evaluation workloads.

#![allow(clippy::needless_range_loop)]

use rand::rngs::StdRng;
use rand::SeedableRng;
use uncertain_db::prelude::*;

fn small_synthetic() -> (Database, SyntheticConfig) {
    let cfg = SyntheticConfig {
        n: 400,
        max_extent: 0.01,
        ..Default::default()
    };
    (cfg.generate(), cfg)
}

#[test]
fn idca_bounds_bracket_world_sampler_on_synthetic_workload() {
    let (db, cfg) = small_synthetic();
    let qs = QuerySet::generate(&db, &cfg, 3, 10, LpNorm::L2, 7);
    let engine = QueryEngine::with_config(
        &db,
        IdcaConfig {
            max_iterations: 5,
            uncertainty_target: 0.0,
            ..Default::default()
        },
    );
    for (r, b) in qs.iter() {
        let snap = engine.domination_count(ObjRef::Db(b), ObjRef::External(r));
        let mut rng = StdRng::seed_from_u64(1234);
        let truth =
            uncertain_db::mc::estimate_domination_count_pdf(&db, b, r, LpNorm::L2, 8_000, &mut rng);
        for k in 0..snap.bounds.len() {
            assert!(
                truth[k] >= snap.bounds.lower(k) - 0.03,
                "k={k}: truth {} < lower {}",
                truth[k],
                snap.bounds.lower(k)
            );
            assert!(
                truth[k] <= snap.bounds.upper(k) + 0.03,
                "k={k}: truth {} > upper {}",
                truth[k],
                snap.bounds.upper(k)
            );
        }
    }
}

#[test]
fn idca_and_mc_engine_agree_on_synthetic_workload() {
    let (db, cfg) = small_synthetic();
    let qs = QuerySet::generate(&db, &cfg, 2, 10, LpNorm::L2, 11);
    let engine = QueryEngine::with_config(
        &db,
        IdcaConfig {
            max_iterations: 6,
            uncertainty_target: 0.0,
            ..Default::default()
        },
    );
    let mc = MonteCarlo {
        samples: 250,
        ..Default::default()
    };
    for (i, (r, b)) in qs.iter().enumerate() {
        let snap = engine.domination_count(ObjRef::Db(b), ObjRef::External(r));
        let mut rng = StdRng::seed_from_u64(42 + i as u64);
        let mc_res = mc.domination_count(&db, b, r, &mut rng);
        // identical spatial filters
        let refiner = engine.refiner(ObjRef::Db(b), ObjRef::External(r), Predicate::FullPdf);
        assert_eq!(mc_res.complete_count, refiner.complete_count());
        assert_eq!(
            mc_res.influence,
            refiner.influence_ids().collect::<Vec<_>>()
        );
        // MC pdf within IDCA bounds (up to sampling error)
        for k in 0..snap.bounds.len() {
            let p = mc_res.pdf.get(k).copied().unwrap_or(0.0);
            assert!(p >= snap.bounds.lower(k) - 0.08, "k={k}");
            assert!(p <= snap.bounds.upper(k) + 0.08, "k={k}");
        }
    }
}

#[test]
fn knn_threshold_pipeline_on_iceberg_workload() {
    let db = IcebergConfig {
        n: 600,
        ..Default::default()
    }
    .generate();
    let engine = QueryEngine::with_config(
        &db,
        IdcaConfig {
            max_iterations: 6,
            ..Default::default()
        },
    );
    // query near the corridor center
    let ship = UncertainObject::certain(Point::from([0.45, 0.5]));
    let res = engine.knn_threshold(&ship, 3, 0.5);
    assert!(!res.is_empty(), "spatial filter should keep candidates");
    let hits = res.iter().filter(|r| r.is_hit(0.5)).count();
    assert!(hits <= 3 + res.iter().filter(|r| r.is_undecided(0.5)).count());
    // each result's bounds are a valid probability interval
    for r in &res {
        assert!(r.prob_lower >= -1e-9 && r.prob_upper <= 1.0 + 1e-9);
        assert!(r.prob_lower <= r.prob_upper + 1e-9);
    }
    // total expected kNN membership is k: bounds must bracket it
    let sum_lower: f64 = res.iter().map(|r| r.prob_lower).sum();
    let sum_upper: f64 = res.iter().map(|r| r.prob_upper).sum();
    assert!(sum_lower <= 3.0 + 1e-6, "sum of lower bounds {sum_lower}");
    assert!(sum_upper >= 3.0 - 1e-6, "sum of upper bounds {sum_upper}");
}

#[test]
fn rknn_matches_definition_on_tiny_db() {
    // three customers; facility q; brute-force the definition
    let db = Database::from_objects(vec![
        UncertainObject::certain(Point::from([0.0, 0.0])),
        UncertainObject::certain(Point::from([1.0, 0.0])),
        UncertainObject::certain(Point::from([5.0, 0.0])),
    ]);
    let q = UncertainObject::certain(Point::from([0.4, 0.0]));
    let engine = QueryEngine::new(&db);
    let res = engine.rknn_threshold(&q, 1, 0.5);
    // for o0: nearest other point is o1 at dist 1; q at 0.4 -> q closer:
    // hit. o1: o0 at dist 1 vs q at 0.6 -> q closer: hit. o2: o1 at 4 vs
    // q at 4.6 -> o1 closer: not a hit.
    let hits: Vec<ObjectId> = res.iter().filter(|r| r.is_hit(0.5)).map(|r| r.id).collect();
    assert_eq!(hits, vec![ObjectId(0), ObjectId(1)]);
}

#[test]
fn expected_rank_ranking_is_consistent_with_mindist_on_separated_data() {
    // objects far apart: expected ranks must follow distances exactly
    let db = Database::from_objects(
        (0..6)
            .map(|i| {
                UncertainObject::new(Pdf::uniform(Rect::centered(
                    &Point::from([i as f64 * 10.0 + 5.0, 0.0]),
                    &[0.5, 0.5],
                )))
            })
            .collect(),
    );
    let q = UncertainObject::certain(Point::from([0.0, 0.0]));
    let engine = QueryEngine::new(&db);
    let ranking = engine.expected_rank_ranking(&q);
    let ids: Vec<u32> = ranking.iter().map(|e| e.id.0).collect();
    assert_eq!(ids, vec![0, 1, 2, 3, 4, 5]);
    for (i, e) in ranking.iter().enumerate() {
        assert!((e.lower - (i + 1) as f64).abs() < 1e-6);
        assert!((e.upper - (i + 1) as f64).abs() < 1e-6);
    }
}

#[test]
fn rtree_candidates_agree_with_query_engine() {
    let (db, _) = small_synthetic();
    let tree = RTree::bulk_load(db.mbrs().map(|(id, r)| (r.clone(), id)).collect(), 16);
    assert_eq!(tree.len(), db.len());
    let q = UncertainObject::certain(Point::from([0.5, 0.5]));
    // the 10 nearest by MinDist must all survive the engine's spatial
    // filter for k = 10
    let knn = tree.knn(q.mbr(), 10, LpNorm::L2);
    let engine = QueryEngine::new(&db);
    let res = engine.knn_threshold(&q, 10, 0.0);
    let candidate_ids: Vec<ObjectId> = res.iter().map(|r| r.id).collect();
    for n in knn {
        assert!(
            candidate_ids.contains(&n.payload),
            "nearest object {} missing from candidates",
            n.payload
        );
    }
}
