//! Serde round-trips: databases, objects and every density family survive
//! JSON serialization, so datasets and experiment inputs can be stored
//! and exchanged.

use uncertain_db::prelude::*;

fn round_trip(db: &Database) -> Database {
    let json = serde_json::to_string(db).expect("serialize");
    serde_json::from_str(&json).expect("deserialize")
}

#[test]
fn database_round_trip_preserves_geometry() {
    let cfg = SyntheticConfig {
        n: 50,
        ..Default::default()
    };
    let db = cfg.generate();
    let back = round_trip(&db);
    assert_eq!(back.len(), db.len());
    for ((_, a), (_, b)) in db.iter().zip(back.iter()) {
        assert_eq!(a.mbr(), b.mbr());
        assert_eq!(a.existence(), b.existence());
    }
}

#[test]
fn every_density_family_round_trips() {
    let support = Rect::centered(&Point::from([0.5, 0.5]), &[0.5, 0.5]);
    let objects = vec![
        UncertainObject::new(Pdf::uniform(support.clone())),
        UncertainObject::new(
            GaussianPdf::new(Point::from([0.5, 0.5]), vec![0.2, 0.2], support.clone()).into(),
        ),
        UncertainObject::new(
            HistogramPdf::from_correlated_gaussian(
                Point::from([0.5, 0.5]),
                [0.2, 0.2],
                0.5,
                support.clone(),
                8,
            )
            .into(),
        ),
        UncertainObject::new(
            DiscretePdf::new(
                vec![Point::from([0.2, 0.2]), Point::from([0.8, 0.8])],
                vec![0.3, 0.7],
            )
            .into(),
        ),
        UncertainObject::new(
            MixturePdf::new(vec![
                (0.5, Pdf::uniform(support.clone())),
                (
                    0.5,
                    Pdf::uniform(Rect::centered(&Point::from([2.0, 2.0]), &[0.1, 0.1])),
                ),
            ])
            .into(),
        ),
        UncertainObject::with_existence(Pdf::uniform(support), 0.4),
    ];
    let db = Database::from_objects(objects);
    let back = round_trip(&db);
    // masses computed after the round trip must match
    let probe = Rect::centered(&Point::from([0.4, 0.4]), &[0.2, 0.2]);
    for ((_, a), (_, b)) in db.iter().zip(back.iter()) {
        let ma = a.pdf().mass_in(&probe);
        let mb = b.pdf().mass_in(&probe);
        assert!((ma - mb).abs() < 1e-12, "mass changed: {ma} vs {mb}");
    }
}

#[test]
fn queries_agree_after_round_trip() {
    let cfg = SyntheticConfig {
        n: 120,
        max_extent: 0.02,
        ..Default::default()
    };
    let db = cfg.generate();
    let back = round_trip(&db);
    let q = UncertainObject::certain(Point::from([0.5, 0.5]));
    let a = QueryEngine::new(&db).knn_threshold(&q, 3, 0.5);
    let b = QueryEngine::new(&back).knn_threshold(&q, 3, 0.5);
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b.iter()) {
        assert_eq!(x.id, y.id);
        assert!((x.prob_lower - y.prob_lower).abs() < 1e-12);
        assert!((x.prob_upper - y.prob_upper).abs() < 1e-12);
    }
}

#[test]
fn workload_configs_round_trip() {
    let cfg = SyntheticConfig::default();
    let json = serde_json::to_string(&cfg).unwrap();
    let back: SyntheticConfig = serde_json::from_str(&json).unwrap();
    assert_eq!(back.n, cfg.n);
    assert_eq!(back.seed, cfg.seed);
    let ic = IcebergConfig::default();
    let json = serde_json::to_string(&ic).unwrap();
    let back: IcebergConfig = serde_json::from_str(&json).unwrap();
    assert_eq!(back.n, ic.n);
}

#[test]
fn database_with_tombstones_round_trips() {
    let cfg = SyntheticConfig {
        n: 20,
        ..Default::default()
    };
    let mut db = cfg.generate();
    db.remove(ObjectId(0));
    db.remove(ObjectId(7));
    let back = round_trip(&db);
    assert_eq!(back.len(), db.len());
    assert!(!back.contains(ObjectId(0)));
    assert!(!back.contains(ObjectId(7)));
    assert_eq!(back.dims(), db.dims());
    let ids: Vec<ObjectId> = back.ids().collect();
    assert_eq!(ids, db.ids().collect::<Vec<_>>());
}

/// The pre-mutation wire format — `objects` as a plain object list, no
/// `live`/`dims` fields — still loads (the counters are recomputed from
/// the slots on deserialization).
#[test]
fn pre_tombstone_wire_format_still_loads() {
    let objects = [
        UncertainObject::certain(Point::from([1.0, 2.0])),
        UncertainObject::certain(Point::from([3.0, 4.0])),
    ];
    let old_json = format!(
        "{{\"objects\":[{},{}]}}",
        serde_json::to_string(&objects[0]).unwrap(),
        serde_json::to_string(&objects[1]).unwrap()
    );
    let db: Database = serde_json::from_str(&old_json).expect("old format deserializes");
    assert_eq!(db.len(), 2);
    assert_eq!(db.dims(), Some(2));
    assert_eq!(db.get(ObjectId(1)).mean(), Point::from([3.0, 4.0]));
}
