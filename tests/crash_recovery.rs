//! Adversarial recovery suite: the durable engine is crashed — by
//! in-process fault injection at every registered [`CrashPoint`], and
//! by hand-mangled on-disk corpora (truncated tails, flipped bytes,
//! corrupt checkpoints) — and every recovery must land on a state that
//! is **bit-identical** to an oracle engine that applied exactly the
//! surviving mutation prefix.
//!
//! Durable-WAL semantics under crash:
//!
//! * Every mutation acknowledged (`Ok`) before the crash survives.
//! * The in-flight mutation may survive (logged, crash before the ack
//!   reached the caller) or vanish (torn / unsynced) — never half-apply.
//! * Degradation is loud: torn tails and corrupt records surface in
//!   [`Engine::recovery_report`], and an unrecoverable directory is an
//!   error, not an empty database.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::{Path, PathBuf};
use uncertain_db::core::{CrashPoint, FaultIo, FaultMode};
use uncertain_db::prelude::*;

// ---------------------------------------------------------------------
// Shared scaffolding
// ---------------------------------------------------------------------

fn random_object(rng: &mut StdRng) -> UncertainObject {
    let cx: f64 = rng.gen_range(0.0..4.0);
    let cy: f64 = rng.gen_range(0.0..4.0);
    let hx: f64 = rng.gen_range(0.02..0.5);
    let hy: f64 = rng.gen_range(0.02..0.5);
    let center = Point::from([cx, cy]);
    let support = Rect::centered(&center, &[hx, hy]);
    let pdf: Pdf = match rng.gen_range(0..3) {
        0 => Pdf::uniform(support),
        1 => GaussianPdf::new(center, vec![hx / 2.0, hy / 2.0], support).into(),
        _ => {
            let n = rng.gen_range(2..5);
            let pts: Vec<Point> = (0..n)
                .map(|_| {
                    Point::from([
                        rng.gen_range(cx - hx..cx + hx),
                        rng.gen_range(cy - hy..cy + hy),
                    ])
                })
                .collect();
            DiscretePdf::equally_weighted(pts).into()
        }
    };
    if rng.gen_range(0..4) == 0 {
        UncertainObject::with_existence(pdf, rng.gen_range(0.3..1.0))
    } else {
        UncertainObject::new(pdf)
    }
}

fn cfg() -> IdcaConfig {
    IdcaConfig {
        max_iterations: 3,
        uncertainty_target: 0.0,
        wal_sync_every: 1,
        checkpoint_every: 0, // checkpoints only where the script says so
        ..Default::default()
    }
}

/// A fresh per-test directory under the system temp dir.
fn test_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("udb-crash-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// One scripted step against the engine: the three mutations, plus an
/// explicit checkpoint (the only way the checkpoint crash gates fire
/// with `checkpoint_every = 0`).
#[derive(Clone)]
enum Op {
    Insert(UncertainObject),
    Remove(ObjectId),
    Update(ObjectId, UncertainObject),
    Checkpoint,
}

impl Op {
    fn is_mutation(&self) -> bool {
        !matches!(self, Op::Checkpoint)
    }
}

/// A deterministic mutation script whose ids are precomputed: fresh ids
/// are sequential (`base + len` is invariant under compaction), so an
/// oracle replaying any prefix assigns identical ids.
fn script(rng: &mut StdRng, baseline: usize, steps: usize) -> Vec<Op> {
    let mut next_id = baseline as u32;
    let mut live: Vec<u32> = (0..baseline as u32).collect();
    let mut ops = Vec::with_capacity(steps);
    for step in 0..steps {
        if step % 5 == 4 {
            ops.push(Op::Checkpoint);
            continue;
        }
        match rng.gen_range(0..3) {
            0 => {
                ops.push(Op::Insert(random_object(rng)));
                live.push(next_id);
                next_id += 1;
            }
            1 if live.len() > 3 => {
                let id = live.remove(rng.gen_range(0..live.len()));
                ops.push(Op::Remove(ObjectId(id)));
            }
            _ => {
                let id = live[rng.gen_range(0..live.len())];
                ops.push(Op::Update(ObjectId(id), random_object(rng)));
            }
        }
    }
    ops
}

fn apply_fallible(engine: &mut Engine, op: &Op) -> Result<(), DurableError> {
    match op {
        Op::Insert(o) => engine.try_insert(o.clone()).map(|_| ()),
        Op::Remove(id) => engine.try_remove(*id).map(|_| ()),
        Op::Update(id, o) => engine.try_update(*id, o.clone()).map(|_| ()),
        Op::Checkpoint => engine.checkpoint(),
    }
}

/// The never-crashed oracle: a fresh engine that applies the baseline
/// and then exactly `muts` mutations of the script.
fn oracle_after(baseline: &[UncertainObject], ops: &[Op], muts: usize) -> Engine {
    let mut engine = Engine::with_config(Database::new(), cfg());
    for o in baseline {
        engine.insert(o.clone());
    }
    let mut applied = 0;
    for op in ops {
        if applied == muts {
            break;
        }
        match op {
            Op::Insert(o) => {
                engine.insert(o.clone());
            }
            Op::Remove(id) => {
                engine.remove(*id);
            }
            Op::Update(id, o) => {
                engine.update(*id, o.clone());
            }
            Op::Checkpoint => continue, // not a mutation
        }
        applied += 1;
    }
    assert_eq!(applied, muts, "script exhausted before the target prefix");
    engine
}

/// Bit-exact state + query equivalence between a recovered engine and
/// the oracle.
fn assert_engines_identical(recovered: &Engine, oracle: &mut Engine, ctx: &str) {
    // compact the oracle too (recovery checkpoints on open), then the
    // databases must serialize identically — same base, same slots,
    // same floats to the last bit
    oracle.checkpoint().expect("oracle checkpoint");
    let a = serde_json::to_string(recovered.db()).expect("serialize recovered");
    let b = serde_json::to_string(oracle.db()).expect("serialize oracle");
    assert_eq!(a, b, "{ctx}: databases diverged");

    // and the query layer must agree bit-for-bit on every query family
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    for qi in 0..2 {
        let q = random_object(&mut rng);
        let (k, tau) = (rng.gen_range(1..3), rng.gen_range(0.1..0.7));
        let knn_a = recovered.knn_threshold(&q, k, tau);
        let knn_b = oracle.knn_threshold(&q, k, tau);
        assert_results_identical(&knn_a, &knn_b, &format!("{ctx} knn q{qi}"));
        let rk_a = recovered.rknn_threshold(&q, k, tau);
        let rk_b = oracle.rknn_threshold(&q, k, tau);
        assert_results_identical(&rk_a, &rk_b, &format!("{ctx} rknn q{qi}"));
        let top_a = recovered.top_probable_nn(&q, 2);
        let top_b = oracle.top_probable_nn(&q, 2);
        assert_results_identical(&top_a, &top_b, &format!("{ctx} top_m q{qi}"));
    }
}

fn assert_results_identical(a: &[ThresholdResult], b: &[ThresholdResult], ctx: &str) {
    assert_eq!(a.len(), b.len(), "{ctx}: set size diverged");
    for (ra, rb) in a.iter().zip(b.iter()) {
        assert_eq!(ra.id, rb.id, "{ctx}");
        assert_eq!(ra.prob_lower.to_bits(), rb.prob_lower.to_bits(), "{ctx}");
        assert_eq!(ra.prob_upper.to_bits(), rb.prob_upper.to_bits(), "{ctx}");
        assert_eq!(ra.iterations, rb.iterations, "{ctx}");
    }
}

/// Seeds a durable directory: `baseline` objects inserted, synced and
/// checkpointed — the committed state every crash scenario starts from.
fn seed_dir(dir: &Path, baseline: &[UncertainObject]) {
    let mut engine = Engine::open_with_config(dir, cfg()).expect("seed open");
    for o in baseline {
        engine.insert(o.clone());
    }
    engine.wal_sync().expect("seed sync");
    engine.checkpoint().expect("seed checkpoint");
    // dropped without further flushing: drop == crash, but everything
    // above is already on stable storage
}

// ---------------------------------------------------------------------
// Fault-injection sweep: every crash point x both fault modes
// ---------------------------------------------------------------------

/// Crashes a scripted run at `point` (in `mode`) and proves recovery
/// lands on the acknowledged prefix — or the acknowledged prefix plus
/// the single in-flight record, when the log survived the crash.
fn crash_and_recover_case(point: CrashPoint, mode: FaultMode, seed: u64) {
    let name = format!("{}-{:?}-{seed}", point.name(), mode);
    let dir = test_dir(&name);
    let mut rng = StdRng::seed_from_u64(seed);
    let baseline: Vec<UncertainObject> = (0..8).map(|_| random_object(&mut rng)).collect();
    seed_dir(&dir, &baseline);

    // opening checkpoints once, so the checkpoint gates' first crossing
    // happens during open; arm the second crossing to crash the
    // mid-script checkpoint instead
    let nth = match point {
        CrashPoint::WalMidRecord | CrashPoint::WalBeforeSync | CrashPoint::WalAfterSync => 3,
        _ => 2,
    };
    let io = FaultIo::armed(mode, point, nth);
    let mut engine = Engine::open_with_io(&dir, cfg(), Box::new(io)).expect("armed open");

    let ops = script(&mut rng, baseline.len(), 20);
    let mut acked = 0usize; // acknowledged *mutations*
    let mut in_flight: Option<&Op> = None;
    let mut crashed = false;
    for op in &ops {
        match apply_fallible(&mut engine, op) {
            Ok(()) => {
                if op.is_mutation() {
                    acked += 1;
                }
            }
            Err(_) => {
                crashed = true;
                if op.is_mutation() {
                    in_flight = Some(op);
                }
                break;
            }
        }
    }
    assert!(crashed, "{name}: the armed crash point never fired");
    drop(engine); // no flush on drop: exactly the crashed process's files

    let recovered = Engine::open_with_config(&dir, cfg())
        .unwrap_or_else(|e| panic!("{name}: recovery failed: {e}"));
    let survived = (recovered.mutations() as usize)
        .checked_sub(baseline.len())
        .expect("recovered fewer mutations than the committed baseline");

    // the acknowledged prefix always survives; at most the one
    // in-flight record may ride along (logged, never acknowledged)
    assert!(
        survived == acked || (survived == acked + 1 && in_flight.is_some()),
        "{name}: {acked} acked, {survived} survived"
    );
    let mut oracle = oracle_after(&baseline, &ops, survived);
    assert_engines_identical(&recovered, &mut oracle, &name);

    // and the recovered engine keeps serving: a fresh durable mutation
    let mut recovered = recovered;
    let extra = random_object(&mut rng);
    recovered.insert(extra.clone());
    oracle.insert(extra);
    assert_engines_identical(&recovered, &mut oracle, &format!("{name} post-recovery"));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn crash_sweep_every_point_both_modes() {
    for &point in CrashPoint::ALL.iter() {
        for mode in [FaultMode::WriteThrough, FaultMode::WriteBack] {
            crash_and_recover_case(point, mode, 7 + point as u64);
        }
    }
}

/// Crashing during `open` itself (the checkpoint-on-open) must leave a
/// directory that the next open recovers — recovery is idempotent.
#[test]
fn crash_during_open_is_idempotent() {
    for &point in &[
        CrashPoint::CheckpointMidWrite,
        CrashPoint::CheckpointBeforeRename,
        CrashPoint::CheckpointAfterRename,
        CrashPoint::CheckpointBeforePrune,
    ] {
        for mode in [FaultMode::WriteThrough, FaultMode::WriteBack] {
            let name = format!("open-{}-{:?}", point.name(), mode);
            let dir = test_dir(&name);
            let mut rng = StdRng::seed_from_u64(99);
            let baseline: Vec<UncertainObject> = (0..6).map(|_| random_object(&mut rng)).collect();
            seed_dir(&dir, &baseline);

            let io = FaultIo::armed(mode, point, 1);
            let err = Engine::open_with_io(&dir, cfg(), Box::new(io));
            assert!(err.is_err(), "{name}: open should report the crash");

            let recovered = Engine::open_with_config(&dir, cfg())
                .unwrap_or_else(|e| panic!("{name}: second open failed: {e}"));
            assert_eq!(recovered.mutations() as usize, baseline.len(), "{name}");
            let mut oracle = oracle_after(&baseline, &[], 0);
            assert_engines_identical(&recovered, &mut oracle, &name);
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

// ---------------------------------------------------------------------
// Hand-mangled corpora: truncation, bit flips, corrupt checkpoints
// ---------------------------------------------------------------------

/// The newest WAL segment in a durable directory.
fn newest_segment(dir: &Path) -> PathBuf {
    let mut segs: Vec<PathBuf> = std::fs::read_dir(dir)
        .expect("read dir")
        .map(|e| e.expect("entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "log"))
        .collect();
    segs.sort();
    segs.pop().expect("no WAL segment")
}

fn newest_checkpoint(dir: &Path) -> PathBuf {
    let mut ckpts: Vec<PathBuf> = std::fs::read_dir(dir)
        .expect("read dir")
        .map(|e| e.expect("entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "ckpt"))
        .collect();
    ckpts.sort();
    ckpts.pop().expect("no checkpoint")
}

/// Seeds a dir, then appends `tail` extra synced inserts to the WAL
/// without checkpointing them. Returns (baseline ++ tail) as the op
/// stream an oracle can replay.
fn seed_with_tail(dir: &Path, rng: &mut StdRng, tail: usize) -> (Vec<UncertainObject>, Vec<Op>) {
    let baseline: Vec<UncertainObject> = (0..6).map(|_| random_object(rng)).collect();
    seed_dir(dir, &baseline);
    let mut engine = Engine::open_with_config(dir, cfg()).expect("tail open");
    let ops: Vec<Op> = (0..tail).map(|_| Op::Insert(random_object(rng))).collect();
    for op in &ops {
        apply_fallible(&mut engine, op).expect("tail insert");
    }
    engine.wal_sync().expect("tail sync");
    drop(engine); // no checkpoint: the tail lives only in the WAL
    (baseline, ops)
}

/// Truncating the final record at every byte offset: recovery drops it
/// (with a torn-tail warning), keeps everything before it, and never
/// panics.
#[test]
fn truncated_tail_recovers_prefix_at_every_cut() {
    let dir = test_dir("truncate");
    let mut rng = StdRng::seed_from_u64(3);
    let (baseline, ops) = seed_with_tail(&dir, &mut rng, 3);
    let seg = newest_segment(&dir);
    let intact = std::fs::read(&seg).expect("read segment");

    // sample cuts across the whole tail record (and a few earlier ones)
    let cuts: Vec<usize> = (1..intact.len())
        .step_by(37)
        .chain([intact.len() - 1])
        .collect();
    for cut in cuts {
        std::fs::write(&seg, &intact[..cut]).expect("truncate");
        let recovered = Engine::open_with_config(&dir, cfg())
            .unwrap_or_else(|e| panic!("cut={cut}: recovery failed: {e}"));
        let survived = recovered.mutations() as usize - baseline.len();
        assert!(survived <= ops.len(), "cut={cut}: invented mutations");
        let report = recovered.recovery_report().expect("opened engine");
        // a cut strictly inside a frame must be reported; a cut exactly
        // on a frame boundary is a legitimately shorter, clean log
        if uncertain_db::core::read_wal_bytes(&intact[..cut])
            .defect
            .is_some()
        {
            assert!(
                report.warnings.iter().any(|w| w.contains("torn")),
                "cut={cut}: silent truncation: {report:?}"
            );
        }
        let mut oracle = oracle_after(&baseline, &ops, survived);
        assert_engines_identical(&recovered, &mut oracle, &format!("cut={cut}"));
        // recovery checkpointed on open, changing the directory; restore
        // the corpus for the next cut
        let _ = std::fs::remove_dir_all(&dir);
        let (b2, o2) = seed_with_tail(&dir, &mut StdRng::seed_from_u64(3), 3);
        assert_eq!(b2.len(), baseline.len());
        assert_eq!(o2.len(), ops.len());
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// A flipped byte mid-log: replay applies the records before the
/// corruption, stops there loudly, and never applies anything after it
/// (later records were logged against a state containing the bad one).
#[test]
fn corrupt_record_stops_replay_loudly() {
    let dir = test_dir("flip");
    let mut rng = StdRng::seed_from_u64(4);
    let (baseline, ops) = seed_with_tail(&dir, &mut rng, 4);
    let seg = newest_segment(&dir);
    let intact = std::fs::read(&seg).expect("read segment");

    for offset in (9..intact.len()).step_by(101) {
        let mut mangled = intact.clone();
        mangled[offset] ^= 0x20;
        std::fs::write(&seg, &mangled).expect("flip byte");
        let recovered = Engine::open_with_config(&dir, cfg())
            .unwrap_or_else(|e| panic!("offset={offset}: recovery failed: {e}"));
        let survived = recovered.mutations() as usize - baseline.len();
        assert!(
            survived < ops.len(),
            "offset={offset}: corruption unnoticed"
        );
        let report = recovered.recovery_report().expect("opened engine");
        assert!(
            !report.warnings.is_empty(),
            "offset={offset}: silent corruption"
        );
        let mut oracle = oracle_after(&baseline, &ops, survived);
        assert_engines_identical(&recovered, &mut oracle, &format!("offset={offset}"));
        let _ = std::fs::remove_dir_all(&dir);
        seed_with_tail(&dir, &mut StdRng::seed_from_u64(4), 4);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// A corrupt newest checkpoint: recovery falls back to the previous
/// checkpoint and replays the full WAL from there — same final state,
/// with the fallback on record.
#[test]
fn corrupt_checkpoint_falls_back_to_previous() {
    let dir = test_dir("ckpt-fallback");
    let mut rng = StdRng::seed_from_u64(5);
    let baseline: Vec<UncertainObject> = (0..6).map(|_| random_object(&mut rng)).collect();
    seed_dir(&dir, &baseline);
    // a second generation: more inserts + another checkpoint, so the
    // directory holds two checkpoints (prune keeps the previous one)
    let mut engine = Engine::open_with_config(&dir, cfg()).expect("gen2 open");
    let gen2: Vec<Op> = (0..3)
        .map(|_| Op::Insert(random_object(&mut rng)))
        .collect();
    for op in &gen2 {
        apply_fallible(&mut engine, op).expect("gen2 insert");
    }
    engine.checkpoint().expect("gen2 checkpoint");
    drop(engine);

    let newest = newest_checkpoint(&dir);
    let mut bytes = std::fs::read(&newest).expect("read checkpoint");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&newest, &bytes).expect("corrupt checkpoint");

    let recovered = Engine::open_with_config(&dir, cfg()).expect("fallback recovery");
    let report = recovered.recovery_report().expect("opened engine").clone();
    assert!(report.fallback >= 1, "fallback not recorded: {report:?}");
    assert!(!report.warnings.is_empty(), "silent fallback");
    assert_eq!(
        recovered.mutations() as usize,
        baseline.len() + gen2.len(),
        "fallback + full replay must reach the same state"
    );
    let mut oracle = oracle_after(&baseline, &gen2, gen2.len());
    assert_engines_identical(&recovered, &mut oracle, "checkpoint fallback");
    let _ = std::fs::remove_dir_all(&dir);
}

/// When checkpoints exist but none loads, recovery must refuse: an
/// empty database over existing data would be a silent wrong answer.
#[test]
fn unrecoverable_directory_is_an_error_not_empty() {
    let dir = test_dir("unrecoverable");
    let mut rng = StdRng::seed_from_u64(6);
    let baseline: Vec<UncertainObject> = (0..4).map(|_| random_object(&mut rng)).collect();
    seed_dir(&dir, &baseline);

    // corrupt every checkpoint in the directory
    for entry in std::fs::read_dir(&dir).expect("read dir") {
        let path = entry.expect("entry").path();
        if path.extension().is_some_and(|e| e == "ckpt") {
            let mut bytes = std::fs::read(&path).expect("read");
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0xFF;
            std::fs::write(&path, &bytes).expect("write");
        }
    }
    match Engine::open_with_config(&dir, cfg()) {
        Err(DurableError::NoValidCheckpoint { warnings }) => {
            assert!(!warnings.is_empty(), "refusal must explain itself");
        }
        Err(other) => panic!("wrong error: {other}"),
        Ok(engine) => panic!(
            "recovered {} objects from an unrecoverable directory",
            engine.db().len()
        ),
    }
    let _ = std::fs::remove_dir_all(&dir);
}
