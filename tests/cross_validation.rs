//! Randomized cross-validation: IDCA bounds vs ground-truth possible-world
//! sampling over many random configurations, including the non-uniform
//! and correlated density models.

#![allow(clippy::needless_range_loop)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use uncertain_db::prelude::*;

/// A random object with a random density family.
fn random_object(rng: &mut StdRng) -> UncertainObject {
    let cx: f64 = rng.gen_range(0.0..4.0);
    let cy: f64 = rng.gen_range(0.0..4.0);
    let hx: f64 = rng.gen_range(0.05..0.8);
    let hy: f64 = rng.gen_range(0.05..0.8);
    let center = Point::from([cx, cy]);
    let support = Rect::centered(&center, &[hx, hy]);
    match rng.gen_range(0..4) {
        0 => UncertainObject::new(Pdf::uniform(support)),
        1 => {
            UncertainObject::new(GaussianPdf::new(center, vec![hx / 2.0, hy / 2.0], support).into())
        }
        2 => {
            let rho: f64 = rng.gen_range(-0.8..0.8);
            UncertainObject::new(
                HistogramPdf::from_correlated_gaussian(
                    center,
                    [hx / 2.0, hy / 2.0],
                    rho,
                    support,
                    8,
                )
                .into(),
            )
        }
        _ => {
            let n = rng.gen_range(2..6);
            let pts: Vec<Point> = (0..n)
                .map(|_| {
                    Point::from([
                        rng.gen_range(cx - hx..cx + hx),
                        rng.gen_range(cy - hy..cy + hy),
                    ])
                })
                .collect();
            UncertainObject::new(DiscretePdf::equally_weighted(pts).into())
        }
    }
}

#[test]
fn idca_brackets_ground_truth_across_density_families() {
    for trial in 0..6u64 {
        let mut rng = StdRng::seed_from_u64(1000 + trial);
        let n = rng.gen_range(4..9);
        let db = Database::from_objects((0..n).map(|_| random_object(&mut rng)).collect());
        let r = random_object(&mut rng);
        let target = ObjectId(rng.gen_range(0..n as u32));

        let mut refiner = Refiner::new(
            &db,
            ObjRef::Db(target),
            ObjRef::External(&r),
            IdcaConfig {
                max_iterations: 5,
                uncertainty_target: 0.0,
                ..Default::default()
            },
            Predicate::FullPdf,
        );
        let snap = refiner.run();
        let mut world_rng = StdRng::seed_from_u64(2000 + trial);
        let truth = uncertain_db::mc::estimate_domination_count_pdf(
            &db,
            target,
            &r,
            LpNorm::L2,
            12_000,
            &mut world_rng,
        );
        for k in 0..snap.bounds.len() {
            assert!(
                truth[k] >= snap.bounds.lower(k) - 0.03,
                "trial {trial} k={k}: truth {} < lower {}",
                truth[k],
                snap.bounds.lower(k)
            );
            assert!(
                truth[k] <= snap.bounds.upper(k) + 0.03,
                "trial {trial} k={k}: truth {} > upper {}",
                truth[k],
                snap.bounds.upper(k)
            );
        }
    }
}

#[test]
fn threshold_decisions_never_contradict_ground_truth() {
    for trial in 0..5u64 {
        let mut rng = StdRng::seed_from_u64(3000 + trial);
        let n = rng.gen_range(5..10);
        let db = Database::from_objects((0..n).map(|_| random_object(&mut rng)).collect());
        let q = random_object(&mut rng);
        let k = rng.gen_range(1..4);
        let tau = *[0.25, 0.5, 0.75].get(rng.gen_range(0..3)).unwrap();

        let engine = QueryEngine::with_config(
            &db,
            IdcaConfig {
                max_iterations: 6,
                uncertainty_target: 0.0,
                ..Default::default()
            },
        );
        let results = engine.knn_threshold(&q, k, tau);
        for res in results {
            // ground truth P(DomCount < k) by world sampling
            let mut world_rng = StdRng::seed_from_u64(4000 + trial);
            let truth_pdf = uncertain_db::mc::estimate_domination_count_pdf(
                &db,
                res.id,
                &q,
                LpNorm::L2,
                12_000,
                &mut world_rng,
            );
            let truth: f64 = truth_pdf[..k.min(truth_pdf.len())].iter().sum();
            assert!(
                truth >= res.prob_lower - 0.03,
                "trial {trial} obj {}: truth {truth} < lower {}",
                res.id,
                res.prob_lower
            );
            assert!(
                truth <= res.prob_upper + 0.03,
                "trial {trial} obj {}: truth {truth} > upper {}",
                res.id,
                res.prob_upper
            );
            // decided answers must match ground truth (with slack around
            // the threshold for sampling error)
            if res.is_hit(tau) {
                assert!(truth > tau - 0.04, "false hit: truth {truth} tau {tau}");
            }
            if res.is_drop(tau) {
                assert!(truth <= tau + 0.04, "false drop: truth {truth} tau {tau}");
            }
        }
    }
}

#[test]
fn mc_engine_and_world_sampler_agree() {
    // the two independent estimators (conditional exact GF vs whole-world
    // sampling) must converge to the same distribution
    for trial in 0..3u64 {
        let mut rng = StdRng::seed_from_u64(5000 + trial);
        let n = rng.gen_range(3..6);
        let db = Database::from_objects((0..n).map(|_| random_object(&mut rng)).collect());
        let r = random_object(&mut rng);
        let target = ObjectId(0);

        let mc = MonteCarlo {
            samples: 300,
            ..Default::default()
        };
        let mut rng1 = StdRng::seed_from_u64(6000 + trial);
        let engine_pdf = mc.domination_count(&db, target, &r, &mut rng1).pdf;
        let mut rng2 = StdRng::seed_from_u64(7000 + trial);
        let world_pdf = uncertain_db::mc::estimate_domination_count_pdf(
            &db,
            target,
            &r,
            LpNorm::L2,
            30_000,
            &mut rng2,
        );
        for k in 0..engine_pdf.len().max(world_pdf.len()) {
            let a = engine_pdf.get(k).copied().unwrap_or(0.0);
            let b = world_pdf.get(k).copied().unwrap_or(0.0);
            assert!(
                (a - b).abs() < 0.05,
                "trial {trial} k={k}: engine {a} vs worlds {b}"
            );
        }
    }
}
