//! Per-shard durability isolation: every shard of a durable
//! [`ShardedEngine`] owns its own directory (`<dir>/shard-<i>`) with
//! its own WAL and checkpoints, so a crash in one shard loses (at
//! most) that shard's unsynced tail and recovers without touching its
//! siblings — their acknowledged mutations survive to the last byte,
//! and the router's self-healing insert routing refills the crashed
//! shard's id holes afterwards.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::PathBuf;
use uncertain_db::core::{CrashPoint, FaultIo, FaultMode, FileIo};
use uncertain_db::prelude::*;

fn random_object(rng: &mut StdRng) -> UncertainObject {
    let cx: f64 = rng.gen_range(0.0..4.0);
    let cy: f64 = rng.gen_range(0.0..4.0);
    let hx: f64 = rng.gen_range(0.02..0.5);
    let hy: f64 = rng.gen_range(0.02..0.5);
    let center = Point::from([cx, cy]);
    let support = Rect::centered(&center, &[hx, hy]);
    UncertainObject::new(Pdf::uniform(support))
}

fn cfg() -> IdcaConfig {
    IdcaConfig {
        max_iterations: 3,
        uncertainty_target: 0.0,
        wal_sync_every: 1,
        checkpoint_every: 0,
        ..Default::default()
    }
}

fn test_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("udb-shard-crash-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The crash-point spot-check: arm a WAL fault on one shard of three,
/// crash it mid-stream, and prove (a) the sibling shards recover every
/// acknowledged mutation, (b) the crashed shard recovers its
/// acknowledged prefix (the in-flight record at most rides along), (c)
/// queries after recovery are bit-identical to a fresh single engine
/// over the surviving union, and (d) the next insert refills the
/// crashed shard's id hole.
#[test]
fn crash_in_one_shard_leaves_siblings_intact() {
    const SHARDS: usize = 3;
    const FAULTY: usize = 1;
    let dir = test_dir("one-of-three");
    let mut rng = StdRng::seed_from_u64(0x5AD);

    // committed baseline: 9 arrivals round-robin over 3 shards, synced
    // and checkpointed
    let baseline: Vec<UncertainObject> = (0..9).map(|_| random_object(&mut rng)).collect();
    {
        let mut engine = ShardedEngine::open(&dir, cfg(), SHARDS).expect("seed open");
        for o in &baseline {
            engine.insert(o.clone());
        }
        engine.wal_sync().expect("seed sync");
        engine.checkpoint().expect("seed checkpoint");
    }

    // reopen with a fault armed on shard 1 only; siblings run clean
    let mut engine = ShardedEngine::open_with_io(&dir, cfg(), SHARDS, |s| {
        if s == FAULTY {
            Box::new(FaultIo::armed(
                FaultMode::WriteBack,
                CrashPoint::WalBeforeSync,
                5,
            ))
        } else {
            Box::new(FileIo::new())
        }
    })
    .expect("armed open");

    // stream arrivals until the armed shard crashes
    let mut acked: Vec<(ObjectId, UncertainObject)> = Vec::new();
    let mut in_flight: Option<ObjectId> = None;
    for arrival in 9u32..40 {
        let obj = random_object(&mut rng);
        match engine.try_insert(obj.clone()) {
            Ok(id) => {
                assert_eq!(id, ObjectId(arrival), "arrival-order ids");
                acked.push((id, obj));
            }
            Err(_) => {
                in_flight = Some(ObjectId(arrival));
                break;
            }
        }
    }
    let crashed_at = in_flight.expect("the armed crash point never fired");
    assert_eq!(
        crashed_at.index() % SHARDS,
        FAULTY,
        "the crash must come from the faulty shard"
    );
    drop(engine); // no flush on drop: exactly the crashed process's files

    // clean reopen: every shard recovers from its own directory
    let recovered = ShardedEngine::open(&dir, cfg(), SHARDS).expect("recovery failed");

    // (a) + (b): siblings kept every acknowledged mutation; the faulty
    // shard kept its acknowledged prefix (the in-flight record may
    // survive only if it reached the log — with this fault it cannot)
    for (id, obj) in &acked {
        assert!(
            recovered.contains(*id),
            "acknowledged arrival {id:?} lost in recovery"
        );
        assert_eq!(recovered.get(*id).mbr(), obj.mbr());
    }
    assert!(
        !recovered.contains(crashed_at),
        "the torn in-flight record must not half-apply"
    );
    assert_eq!(recovered.len(), baseline.len() + acked.len());
    for (s, shard) in recovered.shards().iter().enumerate() {
        let expect = 3 + acked
            .iter()
            .filter(|(id, _)| id.index() % SHARDS == s)
            .count();
        assert_eq!(shard.db().len(), expect, "shard {s} object count");
    }

    // (c): queries over the recovered engine are bit-identical to a
    // fresh single engine over an id-aligned union of the survivors
    let mut mirror = Database::new();
    for o in &baseline {
        mirror.insert(o.clone());
    }
    for (id, obj) in &acked {
        assert_eq!(mirror.insert(obj.clone()), *id);
    }
    let oracle = Engine::with_config(mirror, cfg());
    for _ in 0..2 {
        let q = random_object(&mut rng);
        let a = oracle.knn_threshold(&q, 3, 0.25);
        let b = recovered.knn_threshold(&q, 3, 0.25);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.prob_lower.to_bits(), y.prob_lower.to_bits());
            assert_eq!(x.prob_upper.to_bits(), y.prob_upper.to_bits());
            assert_eq!(x.iterations, y.iterations);
        }
    }

    // (d): the router self-heals — the next insert lands exactly on the
    // crashed shard's lost id (the lowest free global id)
    let mut recovered = recovered;
    assert_eq!(
        recovered.insert(random_object(&mut rng)),
        crashed_at,
        "insert routing must refill the crashed shard's id hole"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

/// The `shards` marker file pins the shard count: reopening a durable
/// directory with a different count must refuse loudly instead of
/// silently re-mapping every global id.
#[test]
#[should_panic(expected = "shard")]
fn reopening_with_a_different_shard_count_panics() {
    let dir = test_dir("marker");
    {
        let mut engine = ShardedEngine::open(&dir, cfg(), 2).expect("seed open");
        let mut rng = StdRng::seed_from_u64(1);
        engine.insert(random_object(&mut rng));
    }
    let _ = ShardedEngine::open(&dir, cfg(), 4);
}
