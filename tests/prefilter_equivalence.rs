//! Bit-identity oracle for the tier-1 min/max prefilter
//! ([`IdcaConfig::prefilter`]): on randomized workloads, every query path
//! — scan-based, index-driven, and the top-`m` driver — must return
//! *exactly* the same results (ids, bounds, iteration counts) with the
//! prefilter on and off. The cheap tier is only allowed to skip exact
//! snapshots it proves pointless, never to change an outcome, so any
//! observable difference is a bug by construction.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use uncertain_db::prelude::*;

/// A random uncertain object: mixed density families, occasional
/// existential uncertainty (the filter treats those differently).
fn random_object(rng: &mut StdRng) -> UncertainObject {
    let cx: f64 = rng.gen_range(0.0..4.0);
    let cy: f64 = rng.gen_range(0.0..4.0);
    let hx: f64 = rng.gen_range(0.02..0.5);
    let hy: f64 = rng.gen_range(0.02..0.5);
    let center = Point::from([cx, cy]);
    let support = Rect::centered(&center, &[hx, hy]);
    let pdf: Pdf = match rng.gen_range(0..3) {
        0 => Pdf::uniform(support),
        1 => GaussianPdf::new(center, vec![hx / 2.0, hy / 2.0], support).into(),
        _ => {
            let n = rng.gen_range(2..5);
            let pts: Vec<Point> = (0..n)
                .map(|_| {
                    Point::from([
                        rng.gen_range(cx - hx..cx + hx),
                        rng.gen_range(cy - hy..cy + hy),
                    ])
                })
                .collect();
            DiscretePdf::equally_weighted(pts).into()
        }
    };
    if rng.gen_range(0..4) == 0 {
        UncertainObject::with_existence(pdf, rng.gen_range(0.3..1.0))
    } else {
        UncertainObject::new(pdf)
    }
}

fn random_db(rng: &mut StdRng, n: usize) -> Database {
    Database::from_objects((0..n).map(|_| random_object(rng)).collect())
}

/// The two configurations under test: identical except for the prefilter.
fn cfg_pair(max_iterations: usize) -> (IdcaConfig, IdcaConfig) {
    let off = IdcaConfig {
        max_iterations,
        uncertainty_target: 0.0,
        prefilter: false,
        ..Default::default()
    };
    let on = IdcaConfig {
        prefilter: true,
        ..off.clone()
    };
    (off, on)
}

fn assert_bit_identical(off: &[ThresholdResult], on: &[ThresholdResult], path: &str) {
    assert_eq!(on.len(), off.len(), "{path}: result-set size diverged");
    for (a, b) in on.iter().zip(off.iter()) {
        assert_eq!(a.id, b.id, "{path}: result-set membership diverged");
        assert_eq!(
            a.prob_lower.to_bits(),
            b.prob_lower.to_bits(),
            "{path}: lower bound diverged for {:?}",
            a.id
        );
        assert_eq!(
            a.prob_upper.to_bits(),
            b.prob_upper.to_bits(),
            "{path}: upper bound diverged for {:?}",
            a.id
        );
        assert_eq!(
            a.iterations, b.iterations,
            "{path}: iteration count diverged for {:?}",
            a.id
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn knn_threshold_prefilter_is_invisible(
        seed in 0u64..10_000,
        k in 1usize..5,
        tau_pct in 0usize..10,
    ) {
        let tau = tau_pct as f64 / 10.0;
        let mut rng = StdRng::seed_from_u64(0x9A + seed);
        let n = rng.gen_range(8..20);
        let db = random_db(&mut rng, n);
        let q = random_object(&mut rng);
        let (cfg_off, cfg_on) = cfg_pair(4);
        let scan_off = QueryEngine::with_config(&db, cfg_off.clone());
        let scan_on = QueryEngine::with_config(&db, cfg_on.clone());
        assert_bit_identical(
            &scan_off.knn_threshold(&q, k, tau),
            &scan_on.knn_threshold(&q, k, tau),
            "scan knn",
        );
        let idx_off = Engine::with_config(db.clone(), cfg_off);
        let idx_on = Engine::with_config(db, cfg_on);
        assert_bit_identical(
            &idx_off.knn_threshold(&q, k, tau),
            &idx_on.knn_threshold(&q, k, tau),
            "indexed knn",
        );
    }

    #[test]
    fn rknn_threshold_prefilter_is_invisible(
        seed in 0u64..10_000,
        k in 1usize..4,
        tau_pct in 0usize..10,
    ) {
        let tau = tau_pct as f64 / 10.0;
        let mut rng = StdRng::seed_from_u64(0xA9 + seed);
        let n = rng.gen_range(6..14);
        let db = random_db(&mut rng, n);
        let q = random_object(&mut rng);
        let (cfg_off, cfg_on) = cfg_pair(4);
        let scan_off = QueryEngine::with_config(&db, cfg_off.clone());
        let scan_on = QueryEngine::with_config(&db, cfg_on.clone());
        assert_bit_identical(
            &scan_off.rknn_threshold(&q, k, tau),
            &scan_on.rknn_threshold(&q, k, tau),
            "scan rknn",
        );
        let idx_off = Engine::with_config(db.clone(), cfg_off);
        let idx_on = Engine::with_config(db, cfg_on);
        assert_bit_identical(
            &idx_off.rknn_threshold(&q, k, tau),
            &idx_on.rknn_threshold(&q, k, tau),
            "indexed rknn",
        );
    }

    #[test]
    fn top_probable_nn_prefilter_is_invisible(
        seed in 0u64..10_000,
        m in 1usize..4,
    ) {
        let mut rng = StdRng::seed_from_u64(0xB8 + seed);
        let n = rng.gen_range(6..14);
        let db = random_db(&mut rng, n);
        let q = random_object(&mut rng);
        let (cfg_off, cfg_on) = cfg_pair(4);
        let scan_off = QueryEngine::with_config(&db, cfg_off.clone());
        let scan_on = QueryEngine::with_config(&db, cfg_on.clone());
        assert_bit_identical(
            &scan_off.top_probable_nn(&q, m),
            &scan_on.top_probable_nn(&q, m),
            "scan top-m",
        );
        let idx_off = Engine::with_config(db.clone(), cfg_off);
        let idx_on = Engine::with_config(db, cfg_on);
        assert_bit_identical(
            &idx_off.top_probable_nn(&q, m),
            &idx_on.top_probable_nn(&q, m),
            "indexed top-m",
        );
    }
}
