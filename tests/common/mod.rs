//! Shared harness for the equivalence suites: an engine-under-test
//! that honors the `UDB_SHARDS` CI matrix axis.
//!
//! With `UDB_SHARDS` unset (or `1`) the suites exercise a one-shard
//! [`ShardedEngine`], which delegates every query and batch to the
//! plain [`Engine`] code path — asserted by
//! [`TestEngine::assert_routing`] via the router-level refinement
//! counters staying at zero. With `UDB_SHARDS=2` or `4` the identical
//! suites route through the cross-shard query plane, so every
//! bit-identity oracle in the repo doubles as a sharding oracle.
//!
//! The harness keeps a [`Database`] mirror of the engine state: the
//! sharded engine assigns global ids in arrival order — exactly the
//! ids a single database would assign — so replaying the same
//! mutations against the mirror keeps it id-aligned, giving the suites
//! a `db()` view (live ids, oracle rebuilds) without the engine
//! needing a cross-shard database materialization.

// each test binary compiles its own copy and uses a different subset
#![allow(dead_code)]

use uncertain_db::prelude::*;

/// The `UDB_SHARDS` axis value (default 1).
pub fn shards() -> usize {
    env_shards().unwrap_or(1)
}

/// The engine under test: a [`ShardedEngine`] at the `UDB_SHARDS`
/// shard count, plus an id-aligned database mirror.
pub struct TestEngine {
    engine: ShardedEngine,
    mirror: Database,
}

impl TestEngine {
    /// Builds the engine under test over `db` at the `UDB_SHARDS`
    /// shard count.
    pub fn with_config(db: Database, cfg: IdcaConfig) -> Self {
        TestEngine {
            engine: ShardedEngine::with_config(db.clone(), cfg, shards()),
            mirror: db,
        }
    }

    /// Builds with the default configuration.
    pub fn new(db: Database) -> Self {
        TestEngine::with_config(db, IdcaConfig::default())
    }

    /// The underlying sharded engine.
    pub fn engine(&self) -> &ShardedEngine {
        &self.engine
    }

    /// The id-aligned database mirror (live global ids, cloneable for
    /// fresh-oracle rebuilds).
    pub fn db(&self) -> &Database {
        &self.mirror
    }

    /// Asserts the routing contract for the current shard count: at
    /// one shard every query must have delegated to the plain engine
    /// (router-level refinement counters untouched); above one shard
    /// refinement belongs to the router's cross-shard plane, so no
    /// shard's own counters may ever move.
    pub fn assert_routing(&self) {
        if self.engine.num_shards() == 1 {
            assert_eq!(
                self.engine.refine_stats().rounds(),
                0,
                "one-shard engine must delegate to the plain-engine path"
            );
        } else {
            for shard in self.engine.shards() {
                assert_eq!(
                    shard.refine_stats().rounds(),
                    0,
                    "shards must not refine on their own above one shard"
                );
            }
        }
    }

    pub fn insert(&mut self, object: UncertainObject) -> ObjectId {
        let id = self.engine.insert(object.clone());
        let mirrored = self.mirror.insert(object);
        assert_eq!(id, mirrored, "mirror lost id alignment");
        id
    }

    pub fn remove(&mut self, id: ObjectId) -> UncertainObject {
        let removed = self.engine.remove(id);
        self.mirror.remove(id);
        removed
    }

    pub fn update(&mut self, id: ObjectId, object: UncertainObject) -> UncertainObject {
        let old = self.engine.update(id, object.clone());
        self.mirror.replace(id, object);
        old
    }

    pub fn knn_threshold(&self, q: &UncertainObject, k: usize, tau: f64) -> Vec<ThresholdResult> {
        self.engine.knn_threshold(q, k, tau)
    }

    pub fn rknn_threshold(&self, q: &UncertainObject, k: usize, tau: f64) -> Vec<ThresholdResult> {
        self.engine.rknn_threshold(q, k, tau)
    }

    pub fn top_probable_nn(&self, q: &UncertainObject, m: usize) -> Vec<ThresholdResult> {
        self.engine.top_probable_nn(q, m)
    }

    pub fn run_batch(&self, batch: &QueryBatch) -> Vec<Vec<ThresholdResult>> {
        self.engine.run_batch(batch)
    }

    pub fn knn_candidates(&self, q: &Rect, k: usize) -> Vec<ObjectId> {
        self.engine.knn_candidates(q, k)
    }

    pub fn knn_candidates_batch(&self, requests: &[(Rect, usize)]) -> Vec<Vec<ObjectId>> {
        self.engine.knn_candidates_batch(requests)
    }

    /// Entries in the decomposition cache actually serving this shard
    /// count (the shard's own cache at one shard, the router's above).
    pub fn decomp_cache_len(&self) -> usize {
        if self.engine.num_shards() == 1 {
            self.engine.shards()[0].decomp_cache_len()
        } else {
            self.engine.decomp_cache_len()
        }
    }

    /// Structural R-tree invariants on every shard.
    pub fn check_invariants(&self) {
        for shard in self.engine.shards() {
            shard.tree().check_invariants();
        }
    }
}

impl StreamEngine for TestEngine {
    fn stream_insert(&mut self, object: UncertainObject) {
        self.insert(object);
    }
    fn stream_remove_nearest(&mut self, probe: &Rect) -> bool {
        match self.engine.nearest(probe) {
            Some(id) => {
                self.remove(id);
                true
            }
            None => false,
        }
    }
    fn stream_knn(&self, q: &UncertainObject, k: usize, tau: f64) -> Vec<ThresholdResult> {
        self.knn_threshold(q, k, tau)
    }
    fn stream_rknn(&self, q: &UncertainObject, k: usize, tau: f64) -> Vec<ThresholdResult> {
        self.rknn_threshold(q, k, tau)
    }
    fn stream_top_m(&self, q: &UncertainObject, m: usize) -> Vec<ThresholdResult> {
        self.top_probable_nn(q, m)
    }
    fn stream_run_batch(&self, batch: &QueryBatch) -> Vec<Vec<ThresholdResult>> {
        self.run_batch(batch)
    }
    fn stream_subscribe(
        &mut self,
        q: &UncertainObject,
        k: usize,
        tau: f64,
    ) -> Vec<ThresholdResult> {
        self.engine
            .subscribe(q.clone(), StandingSpec::Knn { k, tau })
            .1
    }
    fn stream_flush(&mut self) -> Result<(), DurableError> {
        self.engine.wal_sync()?;
        self.engine.checkpoint()
    }
}
