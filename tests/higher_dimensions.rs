//! The entire pipeline is dimension-generic; these tests exercise it in
//! 3-D and 4-D (the paper evaluates in 2-D but states the model for
//! arbitrary `R^d`).

#![allow(clippy::needless_range_loop)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use uncertain_db::prelude::*;

fn random_box_3d(rng: &mut StdRng) -> UncertainObject {
    let center: Vec<f64> = (0..3).map(|_| rng.gen_range(0.0..2.0)).collect();
    let half: Vec<f64> = (0..3).map(|_| rng.gen_range(0.02..0.3)).collect();
    UncertainObject::new(Pdf::uniform(Rect::centered(&Point::new(center), &half)))
}

#[test]
fn domination_criteria_work_in_3d() {
    let a = Rect::centered(&Point::from([1.0, 1.0, 1.0]), &[0.1, 0.1, 0.1]);
    let b = Rect::centered(&Point::from([4.0, 4.0, 4.0]), &[0.1, 0.1, 0.1]);
    let r = Rect::centered(&Point::from([0.0, 0.0, 0.0]), &[0.2, 0.2, 0.2]);
    let crit = DominationCriterion::Optimal;
    assert!(crit.dominates(&a, &b, &r, LpNorm::L2));
    assert!(crit.never_dominates(&b, &a, &r, LpNorm::L2));
    assert!(DominationCriterion::MinMax.dominates(&a, &b, &r, LpNorm::L2));
}

#[test]
fn decomposition_cycles_three_axes() {
    let pdf = Pdf::uniform(Rect::centered(
        &Point::from([0.0, 0.0, 0.0]),
        &[1.0, 1.0, 1.0],
    ));
    let mut dec = Decomposition::with_strategy(&pdf, SplitStrategy::RoundRobin);
    dec.expand_to(&pdf, 3);
    let parts = dec.partitions();
    assert_eq!(parts.len(), 8);
    let mass: f64 = parts.iter().map(|p| p.mass).sum();
    assert!((mass - 1.0).abs() < 1e-9);
    // after three round-robin levels every axis was split exactly once
    for p in &parts {
        for d in 0..3 {
            assert!((p.mbr.extent(d) - 1.0).abs() < 1e-9);
        }
    }
}

#[test]
fn idca_brackets_world_sampler_in_3d() {
    let mut rng = StdRng::seed_from_u64(333);
    let db = Database::from_objects((0..6).map(|_| random_box_3d(&mut rng)).collect());
    let r = random_box_3d(&mut rng);
    let target = ObjectId(0);
    let mut refiner = Refiner::new(
        &db,
        ObjRef::Db(target),
        ObjRef::External(&r),
        IdcaConfig {
            max_iterations: 4,
            uncertainty_target: 0.0,
            ..Default::default()
        },
        Predicate::FullPdf,
    );
    let snap = refiner.run();
    let mut world_rng = StdRng::seed_from_u64(334);
    let truth = uncertain_db::mc::estimate_domination_count_pdf(
        &db,
        target,
        &r,
        LpNorm::L2,
        15_000,
        &mut world_rng,
    );
    for k in 0..snap.bounds.len() {
        assert!(truth[k] >= snap.bounds.lower(k) - 0.03, "k={k}");
        assert!(truth[k] <= snap.bounds.upper(k) + 0.03, "k={k}");
    }
}

#[test]
fn knn_threshold_in_3d() {
    let db = Database::from_objects(vec![
        UncertainObject::certain(Point::from([1.0, 0.0, 0.0])),
        UncertainObject::certain(Point::from([0.0, 2.0, 0.0])),
        UncertainObject::certain(Point::from([0.0, 0.0, 3.0])),
    ]);
    let q = UncertainObject::certain(Point::from([0.0, 0.0, 0.0]));
    let engine = QueryEngine::new(&db);
    let res = engine.knn_threshold(&q, 1, 0.5);
    let hits: Vec<ObjectId> = res.iter().filter(|r| r.is_hit(0.5)).map(|r| r.id).collect();
    assert_eq!(hits, vec![ObjectId(0)]);
}

#[test]
fn rtree_knn_in_4d() {
    let mut rng = StdRng::seed_from_u64(4);
    let items: Vec<(Rect, usize)> = (0..200)
        .map(|i| {
            let c: Vec<f64> = (0..4).map(|_| rng.gen_range(0.0..10.0)).collect();
            (Rect::from_point(&Point::new(c)), i)
        })
        .collect();
    let tree = RTree::bulk_load(items.clone(), 8);
    let q = Rect::from_point(&Point::from([5.0, 5.0, 5.0, 5.0]));
    let got = tree.knn(&q, 5, LpNorm::L2);
    let mut dists: Vec<f64> = items
        .iter()
        .map(|(r, _)| r.min_dist_rect(&q, LpNorm::L2))
        .collect();
    dists.sort_by(|a, b| a.partial_cmp(b).unwrap());
    for (n, d) in got.iter().zip(dists.iter()) {
        assert!((n.dist - d).abs() < 1e-9);
    }
}

#[test]
fn gaussian_mass_in_3d_factorizes() {
    let g =
        GaussianPdf::truncated_at_sigmas(Point::from([0.0, 0.0, 0.0]), vec![1.0, 1.0, 1.0], 3.0);
    let octant = Rect::from_corners(&Point::from([0.0, 0.0, 0.0]), &Point::from([3.0, 3.0, 3.0]));
    assert!((g.mass_in(&octant) - 0.125).abs() < 1e-6);
}
