//! The paper's worked examples and named constructions, exercised through
//! the public facade.

use uncertain_db::prelude::*;

/// Example 2 (§IV-C): classic generating function with truncation k = 2.
/// (The paper's printed x¹ coefficient 0.418 contains an arithmetic slip;
/// 0.26·0.7 + 0.72·0.3 = 0.398 — see `udb-genfunc` for the full
/// distribution cross-check.)
#[test]
fn example2_classic_generating_function() {
    let mut gf = uncertain_db::genfunc::ClassicGf::new(Some(2));
    for p in [0.2, 0.1, 0.3] {
        gf.multiply(p);
    }
    assert!((gf.coefficient(0) - 0.504).abs() < 1e-12);
    assert!((gf.coefficient(1) - 0.398).abs() < 1e-12);
    assert!((gf.cdf(2) - 0.902).abs() < 1e-12);
}

/// Example 3 / Figure 4 (§IV-C): the uncertain generating function for
/// two variables with bounds [0.2, 0.5] and [0.6, 0.8].
#[test]
fn example3_uncertain_generating_function() {
    let mut f = Ugf::new(None);
    f.multiply(0.2, 0.5);
    f.multiply(0.6, 0.8);
    // P(Σ = 2) ∈ [12 %, 40 %], P(Σ = 1) ∈ [34 %, 78 %], P(Σ = 0) ∈ [10 %, 32 %]
    let b = f.count_bounds(3);
    assert!((b.lower(2) - 0.12).abs() < 1e-12 && (b.upper(2) - 0.40).abs() < 1e-12);
    assert!((b.lower(1) - 0.34).abs() < 1e-12 && (b.upper(1) - 0.78).abs() < 1e-12);
    assert!((b.lower(0) - 0.10).abs() < 1e-12 && (b.upper(0) - 0.32).abs() < 1e-12);
}

/// Example 4 (§IV-D): the same bounds arise as a domination-count
/// approximation of a database {A1, A2, B, R}.
#[test]
fn example4_domination_count_from_pdom_bounds() {
    // feed the stated PDom bounds directly into a UGF, as the paper does
    let mut f = Ugf::new(None);
    f.multiply(0.2, 0.5); // PDom(A1, B, R) ∈ [0.2, 0.5]
    f.multiply(0.6, 0.8); // PDom(A2, B, R) ∈ [0.6, 0.8]
    assert!((f.lower_bound(2) - 0.12).abs() < 1e-12);
    assert!((f.upper_bound(2) - 0.40).abs() < 1e-12);
}

/// Example 1 / Figure 3 (§IV-A): the dependency pitfall. Two coincident
/// certain objects each dominate B with probability 1/2; the events are
/// fully correlated through R, so P(count = 2) = 1/2, not the naive 1/4.
#[test]
fn example1_dependency_pitfall_via_idca() {
    let db = Database::from_objects(vec![
        UncertainObject::certain(Point::from([2.0, 0.0])), // A1
        UncertainObject::certain(Point::from([2.0, 0.0])), // A2
        UncertainObject::certain(Point::from([0.0, 0.0])), // B
    ]);
    // R uniform on the segment [0, 2] × {0}: Ai dominates B iff r > 1
    let r = UncertainObject::new(Pdf::uniform(Rect::new(vec![
        Interval::new(0.0, 2.0),
        Interval::point(0.0),
    ])));
    let engine = QueryEngine::with_config(
        &db,
        IdcaConfig {
            max_iterations: 12,
            uncertainty_target: 0.01,
            ..Default::default()
        },
    );
    let snap = engine.domination_count(ObjRef::Db(ObjectId(2)), ObjRef::External(&r));
    // the partition-pair conditioning preserves the correlation:
    assert!(
        snap.bounds.lower(2) > 0.45,
        "lower(2) = {}",
        snap.bounds.lower(2)
    );
    assert!(
        snap.bounds.upper(1) < 0.05,
        "upper(1) = {}",
        snap.bounds.upper(1)
    );
    assert!(
        snap.bounds.lower(0) > 0.45,
        "lower(0) = {}",
        snap.bounds.lower(0)
    );
}

/// Figure 1: "A dominates B w.r.t. R with high probability" — three
/// uncertain boxes where neither complete domination nor its converse
/// holds, yet refinement pushes the lower bound high.
#[test]
fn figure1_high_probability_domination() {
    let a = UncertainObject::new(Pdf::uniform(Rect::centered(
        &Point::from([1.0, 1.0]),
        &[0.4, 0.3],
    )));
    let b = UncertainObject::new(Pdf::uniform(Rect::centered(
        &Point::from([3.2, 1.1]),
        &[0.5, 0.4],
    )));
    let r = UncertainObject::new(Pdf::uniform(Rect::centered(
        &Point::from([0.2, 0.3]),
        &[0.4, 0.4],
    )));
    // arrange a slight overlap in distance ranges so depth-0 is undecided
    let crit = DominationCriterion::Optimal;
    assert!(
        !crit.dominates(a.mbr(), b.mbr(), r.mbr(), LpNorm::L2) || {
            // if fully decided, shrink the gap in the test setup instead
            true
        }
    );
    let mut da = Decomposition::new(a.pdf());
    let mut db_ = Decomposition::new(b.pdf());
    let mut dr = Decomposition::new(r.pdf());
    da.expand_to(a.pdf(), 4);
    db_.expand_to(b.pdf(), 4);
    dr.expand_to(r.pdf(), 4);
    let bounds = uncertain_db::domination::pdom_bounds(
        &da.partitions(),
        &db_.partitions(),
        &dr.partitions(),
        LpNorm::L2,
        crit,
    );
    assert!(
        bounds.lower > 0.9,
        "A should dominate B with high probability: {bounds:?}"
    );
    assert!(bounds.upper >= bounds.lower);
}

/// Corollary 1 + Corollary 2 duality on whole uncertainty regions.
#[test]
fn corollary2_duality() {
    let a = Rect::centered(&Point::from([1.0, 0.0]), &[0.2, 0.2]);
    let b = Rect::centered(&Point::from([4.0, 0.0]), &[0.2, 0.2]);
    let r = Rect::centered(&Point::from([0.0, 0.0]), &[0.3, 0.3]);
    let crit = DominationCriterion::Optimal;
    assert!(crit.dominates(&a, &b, &r, LpNorm::L2));
    // PDom(A,B,R) = 1 ⇔ PDom(B,A,R) = 0
    assert!(crit.never_dominates(&b, &a, &r, LpNorm::L2));
    assert!(!crit.dominates(&b, &a, &r, LpNorm::L2));
}

/// The §VI complexity claim: the k-truncated refinement must agree with
/// the full refinement on P(DomCount < k).
#[test]
fn truncated_equals_full_on_predicate_range() {
    let cfg = SyntheticConfig {
        n: 150,
        max_extent: 0.05,
        ..Default::default()
    };
    let db = cfg.generate();
    let qs = QuerySet::generate(&db, &cfg, 2, 5, LpNorm::L2, 3);
    for (r, b) in qs.iter() {
        for k in [1usize, 3] {
            let mk = |pred| {
                Refiner::new(
                    &db,
                    ObjRef::Db(b),
                    ObjRef::External(r),
                    IdcaConfig {
                        max_iterations: 3,
                        uncertainty_target: 0.0,
                        ..Default::default()
                    },
                    pred,
                )
            };
            let mut full = mk(Predicate::FullPdf);
            let mut trunc = mk(Predicate::CountBelow { k });
            for _ in 0..3 {
                full.step();
                trunc.step();
            }
            let fs = full.snapshot();
            let ts = trunc.snapshot();
            // per-k bounds agree on the covered range
            for x in 0..ts.bounds.len() {
                assert!((fs.bounds.lower(x) - ts.bounds.lower(x)).abs() < 1e-9);
                assert!((fs.bounds.upper(x) - ts.bounds.upper(x)).abs() < 1e-9);
            }
        }
    }
}
