//! The standing-query bit-identity oracle: a registered subscription's
//! incrementally maintained result set must be **bit-identical** —
//! membership, order, `f64::to_bits` of both probability bounds,
//! iteration counts — to re-answering the query from scratch after
//! every mutation, for all three query types, at 1, 2 and 4 shards.
//!
//! Why this can be exact: the maintainer's tier decisions (skip /
//! partial re-refine / full re-answer) are purely geometric — MBR
//! distances against stored decided bounds — so they never depend on
//! shard count or index shape; and whenever it cannot *prove* a bound
//! stable it falls back to the same refinement pipeline a fresh query
//! runs, over the same candidate id set, multiplying UGF factors in the
//! same ascending-id order. See `crates/core/src/standing.rs` for the
//! per-tier soundness arguments.
//!
//! The suite also checks the pushed [`ResultDelta`]s: replaying a
//! subscription's deltas over its initial answer must reproduce the
//! maintained result set exactly, and the maintenance counters must be
//! shard-count-invariant.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use uncertain_db::prelude::*;

/// A random uncertain object: mixed density families, occasional
/// existential uncertainty (mirrors the other equivalence oracles).
fn random_object(rng: &mut StdRng) -> UncertainObject {
    let cx: f64 = rng.gen_range(0.0..4.0);
    let cy: f64 = rng.gen_range(0.0..4.0);
    let hx: f64 = rng.gen_range(0.02..0.5);
    let hy: f64 = rng.gen_range(0.02..0.5);
    let center = Point::from([cx, cy]);
    let support = Rect::centered(&center, &[hx, hy]);
    let pdf: Pdf = match rng.gen_range(0..3) {
        0 => Pdf::uniform(support),
        1 => GaussianPdf::new(center, vec![hx / 2.0, hy / 2.0], support).into(),
        _ => {
            let n = rng.gen_range(2..5);
            let pts: Vec<Point> = (0..n)
                .map(|_| {
                    Point::from([
                        rng.gen_range(cx - hx..cx + hx),
                        rng.gen_range(cy - hy..cy + hy),
                    ])
                })
                .collect();
            DiscretePdf::equally_weighted(pts).into()
        }
    };
    if rng.gen_range(0..4) == 0 {
        UncertainObject::with_existence(pdf, rng.gen_range(0.3..1.0))
    } else {
        UncertainObject::new(pdf)
    }
}

fn random_db(rng: &mut StdRng, n: usize) -> Database {
    Database::from_objects((0..n).map(|_| random_object(rng)).collect())
}

fn config() -> IdcaConfig {
    IdcaConfig {
        max_iterations: 4,
        uncertainty_target: 0.0,
        decomp_cache_entries: 1024,
        ..Default::default()
    }
}

/// `f64::to_bits`-exact comparison of two result sets.
fn assert_bit_identical(oracle: &[ThresholdResult], maintained: &[ThresholdResult], ctx: &str) {
    assert_eq!(
        maintained.len(),
        oracle.len(),
        "{ctx}: result count diverged"
    );
    for (a, b) in maintained.iter().zip(oracle.iter()) {
        assert_eq!(a.id, b.id, "{ctx}: membership/order diverged");
        assert_eq!(
            a.prob_lower.to_bits(),
            b.prob_lower.to_bits(),
            "{ctx}: lower bound diverged for {:?}",
            a.id
        );
        assert_eq!(
            a.prob_upper.to_bits(),
            b.prob_upper.to_bits(),
            "{ctx}: upper bound diverged for {:?}",
            a.id
        );
        assert_eq!(
            a.iterations, b.iterations,
            "{ctx}: iteration count diverged for {:?}",
            a.id
        );
    }
}

/// Answers `spec` from scratch through the engine's one-shot entry
/// points — the oracle every maintained result set is held to.
fn reanswer(e: &ShardedEngine, q: &UncertainObject, spec: StandingSpec) -> Vec<ThresholdResult> {
    match spec {
        StandingSpec::Knn { k, tau } => e.knn_threshold(q, k, tau),
        StandingSpec::Rknn { k, tau } => e.rknn_threshold(q, k, tau),
        StandingSpec::TopM { m } => e.top_probable_nn(q, m),
    }
}

/// Replays one pushed delta over a client-side result mirror. Deltas
/// are set-based (membership + bounds; top-`m` sets are rank-ordered
/// and reorders alone never push a delta), so the mirror lives in
/// id-sorted form.
fn apply_delta(cur: &mut Vec<ThresholdResult>, d: &ResultDelta) {
    cur.retain(|r| !d.removed.contains(&r.id));
    for c in &d.changed {
        let slot = cur
            .iter_mut()
            .find(|r| r.id == c.id)
            .expect("CHG members survive in the result set");
        *slot = c.clone();
    }
    cur.extend(d.added.iter().cloned());
    cur.sort_by_key(|r| r.id);
}

/// Id-sorted view of a result set, for set-wise delta comparisons.
fn by_id(set: &[ThresholdResult]) -> Vec<ThresholdResult> {
    let mut sorted = set.to_vec();
    sorted.sort_by_key(|r| r.id);
    sorted
}

/// One scripted mutation; ids are global ids, identical at every shard
/// count (arrival-order assignment), so one script drives all engines.
#[derive(Clone)]
enum Mutation {
    Insert(UncertainObject),
    Remove(ObjectId),
    Update(ObjectId, UncertainObject),
}

/// Generates a mutation script against a simulated live-id set (global
/// ids are dense arrival indices, so no engine is needed to predict
/// them).
fn random_script(rng: &mut StdRng, n: usize, len: usize) -> Vec<Mutation> {
    let mut live: Vec<u32> = (0..n as u32).collect();
    let mut next_id = n as u32;
    (0..len)
        .map(|_| match rng.gen_range(0..3) {
            0 => {
                live.push(next_id);
                next_id += 1;
                Mutation::Insert(random_object(rng))
            }
            1 if live.len() > 6 => {
                let id = live.swap_remove(rng.gen_range(0..live.len()));
                Mutation::Remove(ObjectId(id))
            }
            _ => {
                let id = live[rng.gen_range(0..live.len())];
                Mutation::Update(ObjectId(id), random_object(rng))
            }
        })
        .collect()
}

/// The tentpole property: for every query type, at every shard count,
/// after every scripted mutation, the maintained result set is
/// bit-identical to re-answering — and replaying the pushed deltas over
/// the initial answer reproduces the maintained set.
fn check_standing_maintenance(seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = rng.gen_range(12..30);
    let db = random_db(&mut rng, n);
    let queries: Vec<UncertainObject> = (0..3).map(|_| random_object(&mut rng)).collect();
    let specs = [
        StandingSpec::Knn { k: 3, tau: 0.25 },
        StandingSpec::Rknn { k: 3, tau: 0.25 },
        StandingSpec::TopM { m: 2 },
    ];
    let script = random_script(&mut rng, n, 6);
    let mut stats_oracle: Option<StandingStats> = None;
    for shards in [1usize, 2, 4] {
        let mut engine = ShardedEngine::with_config(db.clone(), config(), shards);
        let mut subs: Vec<(u64, UncertainObject, StandingSpec)> = Vec::new();
        let mut mirrors: Vec<Vec<ThresholdResult>> = Vec::new();
        for (q, &spec) in queries.iter().zip(specs.iter()) {
            let (sid, initial) = engine.subscribe(q.clone(), spec);
            assert_bit_identical(
                &reanswer(&engine, q, spec),
                &initial,
                &format!("shards={shards} {spec:?} initial"),
            );
            subs.push((sid, q.clone(), spec));
            mirrors.push(by_id(&initial));
        }
        for (step, m) in script.iter().enumerate() {
            match m {
                Mutation::Insert(obj) => {
                    engine.insert(obj.clone());
                }
                Mutation::Remove(id) => {
                    engine.remove(*id);
                }
                Mutation::Update(id, obj) => {
                    engine.update(*id, obj.clone());
                }
            }
            for delta in engine.take_standing_deltas() {
                let i = subs
                    .iter()
                    .position(|(sid, _, _)| *sid == delta.sub)
                    .expect("delta for a registered subscription");
                apply_delta(&mut mirrors[i], &delta);
            }
            for (i, (sid, q, spec)) in subs.iter().enumerate() {
                let maintained = engine
                    .standing_queries()
                    .iter()
                    .find(|s| s.id() == *sid)
                    .expect("subscription is live")
                    .results()
                    .to_vec();
                let ctx = format!("shards={shards} step={step} {spec:?}");
                assert_bit_identical(&reanswer(&engine, q, *spec), &maintained, &ctx);
                assert_bit_identical(
                    &mirrors[i],
                    &by_id(&maintained),
                    &format!("{ctx} delta-replay"),
                );
            }
        }
        // the tier decisions are geometric, so the cheap/fallback/push
        // counters must not depend on the shard count
        let stats = engine.standing_stats();
        assert_eq!(stats.registered, specs.len());
        match &stats_oracle {
            None => stats_oracle = Some(stats),
            Some(oracle) => assert_eq!(
                *oracle, stats,
                "maintenance counters diverged at shards={shards}"
            ),
        }
        for (sid, _, _) in &subs {
            assert!(engine.unsubscribe(*sid));
            assert!(!engine.unsubscribe(*sid), "double unsubscribe succeeded");
        }
        assert_eq!(engine.standing_stats().registered, 0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn maintained_results_bit_identical_to_reanswer(seed in 0u64..10_000) {
        check_standing_maintenance(seed);
    }
}

/// A maintained subscription on the plain [`Engine`] (the non-sharded
/// surface the serve tier's one-shard fast path delegates to): same
/// oracle, deterministic seed, exercising insert/remove/update hooks
/// directly.
#[test]
fn plain_engine_maintains_bit_identically() {
    let mut rng = StdRng::seed_from_u64(0x57A4D146);
    let db = random_db(&mut rng, 24);
    let q = random_object(&mut rng);
    let mut engine = Engine::with_config(db.clone(), config());
    let (sid, initial) = engine.subscribe(q.clone(), StandingSpec::Knn { k: 3, tau: 0.25 });
    assert_bit_identical(&engine.knn_threshold(&q, 3, 0.25), &initial, "initial");
    let mut applied = 0u64;
    for step in 0..8 {
        match step % 3 {
            0 => {
                engine.insert(random_object(&mut rng));
                applied += 1;
            }
            1 => {
                let id = ObjectId(step as u32);
                if engine.db().try_get(id).is_some() {
                    engine.remove(id);
                    applied += 1;
                }
            }
            _ => {
                let id = ObjectId((step * 2) as u32);
                if engine.db().try_get(id).is_some() {
                    engine.update(id, random_object(&mut rng));
                    applied += 1;
                }
            }
        }
        let maintained = engine
            .standing_queries()
            .iter()
            .find(|s| s.id() == sid)
            .expect("subscription is live")
            .results()
            .to_vec();
        assert_bit_identical(
            &engine.knn_threshold(&q, 3, 0.25),
            &maintained,
            &format!("step={step}"),
        );
    }
    let stats = engine.standing_stats();
    assert_eq!(
        stats.maintained + stats.reanswered,
        applied,
        "every applied mutation ran maintenance"
    );
    assert!(engine.unsubscribe(sid));
}
