//! Property suite for the owned serving engine: the persistent
//! cross-batch decomposition cache and the in-place mutation API must
//! never change *what* is computed, only how much of it is recomputed.
//!
//! * **Warm ≡ cold** — repeating the same batches against one engine
//!   (cache filling up and replaying across batches) returns results
//!   bit-identical to a cold engine with per-batch caches.
//! * **Mutate-then-query ≡ rebuild** — after any interleaving of
//!   inserts, removes and updates, every query answers exactly like a
//!   freshly built engine over the mutated database (index maintained
//!   incrementally, caches invalidated per object).
//! * **Eviction-safe** — tiny cache capacities (constant churn,
//!   every batch evicting most entries) never change results.
//!
//! The engine under test honors the `UDB_SHARDS` matrix axis (see
//! `tests/common`), so every property above is also a sharded-routing
//! property: mutations route by global id, queries fan across shards,
//! and the answers must not move by a bit.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use uncertain_db::prelude::*;

mod common;
use common::TestEngine;

/// A random uncertain object: mixed density families, occasional
/// existential uncertainty (mirrors the other equivalence oracles).
fn random_object(rng: &mut StdRng) -> UncertainObject {
    let cx: f64 = rng.gen_range(0.0..4.0);
    let cy: f64 = rng.gen_range(0.0..4.0);
    let hx: f64 = rng.gen_range(0.02..0.5);
    let hy: f64 = rng.gen_range(0.02..0.5);
    let center = Point::from([cx, cy]);
    let support = Rect::centered(&center, &[hx, hy]);
    let pdf: Pdf = match rng.gen_range(0..3) {
        0 => Pdf::uniform(support),
        1 => GaussianPdf::new(center, vec![hx / 2.0, hy / 2.0], support).into(),
        _ => {
            let n = rng.gen_range(2..5);
            let pts: Vec<Point> = (0..n)
                .map(|_| {
                    Point::from([
                        rng.gen_range(cx - hx..cx + hx),
                        rng.gen_range(cy - hy..cy + hy),
                    ])
                })
                .collect();
            DiscretePdf::equally_weighted(pts).into()
        }
    };
    if rng.gen_range(0..4) == 0 {
        UncertainObject::with_existence(pdf, rng.gen_range(0.3..1.0))
    } else {
        UncertainObject::new(pdf)
    }
}

fn random_db(rng: &mut StdRng, n: usize) -> Database {
    Database::from_objects((0..n).map(|_| random_object(rng)).collect())
}

fn config(cache_cap: usize) -> IdcaConfig {
    IdcaConfig {
        max_iterations: 4,
        uncertainty_target: 0.0,
        decomp_cache_entries: cache_cap,
        ..Default::default()
    }
}

/// Bit-exact comparison of two per-batch result sets.
fn assert_runs_identical(a: &[Vec<ThresholdResult>], b: &[Vec<ThresholdResult>], ctx: &str) {
    assert_eq!(a.len(), b.len(), "{ctx}: result count diverged");
    for (qi, (x, y)) in a.iter().zip(b.iter()).enumerate() {
        assert_eq!(x.len(), y.len(), "{ctx} query={qi}: set size diverged");
        for (ra, rb) in x.iter().zip(y.iter()) {
            assert_eq!(ra.id, rb.id, "{ctx} query={qi}");
            assert_eq!(
                ra.prob_lower.to_bits(),
                rb.prob_lower.to_bits(),
                "{ctx} query={qi} id={:?}",
                ra.id
            );
            assert_eq!(
                ra.prob_upper.to_bits(),
                rb.prob_upper.to_bits(),
                "{ctx} query={qi} id={:?}",
                ra.id
            );
            assert_eq!(ra.iterations, rb.iterations, "{ctx} query={qi}");
        }
    }
}

/// A mixed batch over part-shared, part-fresh query objects (shared
/// regions are what make the cache actually replay across batches).
fn mixed_batch(rng: &mut StdRng, hot: &UncertainObject, queries: usize) -> QueryBatch {
    let (k, tau, m) = (rng.gen_range(1..4), rng.gen_range(0.05..0.8), 2);
    let mut batch = QueryBatch::new();
    for i in 0..queries {
        let q = if i % 2 == 0 {
            hot.clone()
        } else {
            random_object(rng)
        };
        match i % 3 {
            0 => batch.knn_threshold(q, k, tau),
            1 => batch.rknn_threshold(q, k, tau),
            _ => batch.top_probable_nn(q, m),
        };
    }
    batch
}

/// (a) Warm-cache results are bit-identical to cold-cache results
/// across repeated batches — including re-running the *same* batch
/// against an already-hot cache.
fn check_warm_equals_cold(seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let db = random_db(&mut rng, 50);
    let hot = random_object(&mut rng);
    let batches: Vec<QueryBatch> = (0..3).map(|_| mixed_batch(&mut rng, &hot, 5)).collect();
    // the warm engine under test rides the UDB_SHARDS matrix axis; the
    // cold oracle stays a plain single engine
    let warm = TestEngine::with_config(db.clone(), config(1024));
    let cold = Engine::with_config(db, config(0));
    for (bi, batch) in batches.iter().enumerate() {
        let w = warm.run_batch(batch);
        let c = cold.run_batch(batch);
        assert_runs_identical(&w, &c, &format!("batch {bi}"));
        // replay against the now-hot cache: still identical
        let w2 = warm.run_batch(batch);
        assert_runs_identical(&w2, &c, &format!("warm replay of batch {bi}"));
    }
    assert!(warm.decomp_cache_len() > 0, "cache never filled");
    assert_eq!(cold.decomp_cache_len(), 0, "cold engine must not persist");
    warm.assert_routing();
}

/// (b) Any interleaving of mutations and queries equals a freshly built
/// engine over the mutated database — warm caches and incremental index
/// maintenance included.
fn check_mutate_then_query(seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let db = random_db(&mut rng, 30);
    let mut engine = TestEngine::with_config(db, config(1024));
    let q = random_object(&mut rng);
    // warm the cache so stale decompositions would be observable
    engine.knn_threshold(&q, 2, 0.3);
    for round in 0..3 {
        // a few random mutations (ids drawn from the live set)
        for _ in 0..rng.gen_range(1..4) {
            let live: Vec<ObjectId> = engine.db().ids().collect();
            match rng.gen_range(0..3) {
                0 => {
                    let obj = random_object(&mut rng);
                    engine.insert(obj);
                }
                1 if live.len() > 5 => {
                    let id = live[rng.gen_range(0..live.len())];
                    engine.remove(id);
                }
                _ => {
                    let id = live[rng.gen_range(0..live.len())];
                    let obj = random_object(&mut rng);
                    engine.update(id, obj);
                }
            }
        }
        engine.check_invariants();
        // fresh single-engine oracle over the id-aligned mirror
        let fresh = Engine::with_config(engine.db().clone(), config(0));
        let qq = if rng.gen_range(0..2) == 0 {
            q.clone()
        } else {
            random_object(&mut rng)
        };
        let (k, tau) = (rng.gen_range(1..4), rng.gen_range(0.05..0.8));
        assert_runs_identical(
            &[engine.knn_threshold(&qq, k, tau)],
            &[fresh.knn_threshold(&qq, k, tau)],
            &format!("round {round} knn"),
        );
        assert_runs_identical(
            &[engine.rknn_threshold(&qq, k, tau)],
            &[fresh.rknn_threshold(&qq, k, tau)],
            &format!("round {round} rknn"),
        );
        assert_runs_identical(
            &[engine.top_probable_nn(&qq, 2)],
            &[fresh.top_probable_nn(&qq, 2)],
            &format!("round {round} top_m"),
        );
    }
}

/// (c) Cache eviction at tiny capacities never changes results: an
/// engine whose cache can hold almost nothing (constant churn) agrees
/// bit-for-bit with the cold engine on every batch.
fn check_tiny_capacities(seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let db = random_db(&mut rng, 40);
    let hot = random_object(&mut rng);
    let batches: Vec<QueryBatch> = (0..2).map(|_| mixed_batch(&mut rng, &hot, 4)).collect();
    let cold = Engine::with_config(db.clone(), config(0));
    let oracles: Vec<Vec<Vec<ThresholdResult>>> =
        batches.iter().map(|b| cold.run_batch(b)).collect();
    for cap in [1usize, 2, 3] {
        let tiny = TestEngine::with_config(db.clone(), config(cap));
        for (bi, (batch, oracle)) in batches.iter().zip(oracles.iter()).enumerate() {
            let got = tiny.run_batch(batch);
            assert_runs_identical(&got, oracle, &format!("cap={cap} batch={bi}"));
            assert!(
                tiny.decomp_cache_len() <= cap,
                "cap={cap}: {} entries survived trimming",
                tiny.decomp_cache_len()
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn warm_cache_results_equal_cold_cache(seed in 0u64..10_000) {
        check_warm_equals_cold(seed);
    }

    #[test]
    fn mutate_then_query_equals_fresh_engine(seed in 0u64..10_000) {
        check_mutate_then_query(seed);
    }

    #[test]
    fn tiny_cache_capacities_never_change_results(seed in 0u64..10_000) {
        check_tiny_capacities(seed);
    }
}

/// Deterministic end-to-end case: a mutating hot-spot stream served
/// warm equals the same stream served cold, sequential and batched.
#[test]
fn mutating_stream_warm_equals_cold_all_modes() {
    let object_cfg = SyntheticConfig {
        n: 150,
        max_extent: 0.02,
        ..Default::default()
    };
    let db = object_cfg.generate();
    let stream = QueryStreamConfig {
        batches: 3,
        batch_size: 5,
        k: 3,
        insert_weight: 0.15,
        delete_weight: 0.1,
        hotspots: 1,
        hotspot_fraction: 0.8,
        ..Default::default()
    }
    .generate(&object_cfg);
    let mk = |cap: usize| {
        TestEngine::with_config(
            db.clone(),
            IdcaConfig {
                max_iterations: 4,
                decomp_cache_entries: cap,
                ..Default::default()
            },
        )
    };
    let runs: Vec<_> = [
        (1024, ServeMode::Batched),
        (0, ServeMode::Batched),
        (1024, ServeMode::Sequential),
        (0, ServeMode::Sequential),
        (2, ServeMode::Batched), // constant eviction churn
    ]
    .into_iter()
    .map(|(cap, mode)| {
        let mut engine = mk(cap);
        let out = serve_stream(&mut engine, &stream, mode);
        engine.check_invariants();
        out
    })
    .collect();
    for (i, run) in runs.iter().enumerate().skip(1) {
        assert_eq!(&runs[0], run, "run {i} diverged");
    }
}
