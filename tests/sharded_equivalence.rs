//! The sharding bit-identity oracle: a [`ShardedEngine`] at 1, 2 and 4
//! shards must answer every query **bit-identically** — membership,
//! order, `f64::to_bits` of both probability bounds, iteration counts —
//! to a single [`Engine`] holding the union of all shards, with and
//! without interleaved mutations.
//!
//! Why this can be exact (and not merely approximate): global ids are
//! assigned in arrival order regardless of shard count, so the sorted
//! id order every refinement product multiplies in is the single
//! engine's order; candidate sets are visit-order-independent; classify
//! outcomes are tree-shape-independent; and the RkNN prefilter exchange
//! is veto-only (a shard can remove work, never add it). See
//! `crates/core/src/router.rs` and `docs/SERVING.md`.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use uncertain_db::prelude::*;

/// A random uncertain object: mixed density families, occasional
/// existential uncertainty (mirrors the other equivalence oracles).
fn random_object(rng: &mut StdRng) -> UncertainObject {
    let cx: f64 = rng.gen_range(0.0..4.0);
    let cy: f64 = rng.gen_range(0.0..4.0);
    let hx: f64 = rng.gen_range(0.02..0.5);
    let hy: f64 = rng.gen_range(0.02..0.5);
    let center = Point::from([cx, cy]);
    let support = Rect::centered(&center, &[hx, hy]);
    let pdf: Pdf = match rng.gen_range(0..3) {
        0 => Pdf::uniform(support),
        1 => GaussianPdf::new(center, vec![hx / 2.0, hy / 2.0], support).into(),
        _ => {
            let n = rng.gen_range(2..5);
            let pts: Vec<Point> = (0..n)
                .map(|_| {
                    Point::from([
                        rng.gen_range(cx - hx..cx + hx),
                        rng.gen_range(cy - hy..cy + hy),
                    ])
                })
                .collect();
            DiscretePdf::equally_weighted(pts).into()
        }
    };
    if rng.gen_range(0..4) == 0 {
        UncertainObject::with_existence(pdf, rng.gen_range(0.3..1.0))
    } else {
        UncertainObject::new(pdf)
    }
}

fn random_db(rng: &mut StdRng, n: usize) -> Database {
    Database::from_objects((0..n).map(|_| random_object(rng)).collect())
}

fn config() -> IdcaConfig {
    IdcaConfig {
        max_iterations: 4,
        uncertainty_target: 0.0,
        decomp_cache_entries: 1024,
        ..Default::default()
    }
}

/// `f64::to_bits`-exact comparison of two result sets.
fn assert_bit_identical(single: &[ThresholdResult], sharded: &[ThresholdResult], ctx: &str) {
    assert_eq!(sharded.len(), single.len(), "{ctx}: result count diverged");
    for (a, b) in sharded.iter().zip(single.iter()) {
        assert_eq!(a.id, b.id, "{ctx}: membership/order diverged");
        assert_eq!(
            a.prob_lower.to_bits(),
            b.prob_lower.to_bits(),
            "{ctx}: lower bound diverged for {:?}",
            a.id
        );
        assert_eq!(
            a.prob_upper.to_bits(),
            b.prob_upper.to_bits(),
            "{ctx}: upper bound diverged for {:?}",
            a.id
        );
        assert_eq!(
            a.iterations, b.iterations,
            "{ctx}: iteration count diverged for {:?}",
            a.id
        );
    }
}

/// All three query types against both engines, bit-compared, plus the
/// candidate-set equality check.
fn compare_engines(single: &Engine, sharded: &ShardedEngine, q: &UncertainObject, ctx: &str) {
    let (k, tau, m) = (3, 0.25, 2);
    assert_bit_identical(
        &single.knn_threshold(q, k, tau),
        &sharded.knn_threshold(q, k, tau),
        &format!("{ctx} knn"),
    );
    assert_bit_identical(
        &single.rknn_threshold(q, k, tau),
        &sharded.rknn_threshold(q, k, tau),
        &format!("{ctx} rknn"),
    );
    assert_bit_identical(
        &single.top_probable_nn(q, m),
        &sharded.top_probable_nn(q, m),
        &format!("{ctx} top_m"),
    );
    // the merged candidate stream finds exactly the single-tree set
    let mut a = single.knn_candidates(q.mbr(), k);
    let mut b = sharded.knn_candidates(q.mbr(), k);
    a.sort_unstable();
    b.sort_unstable();
    assert_eq!(a, b, "{ctx}: candidate sets diverged");
}

/// Read-only workload: build both engines over the same database,
/// compare every query type at 1/2/4 shards.
fn check_read_only(seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = rng.gen_range(20..60);
    let db = random_db(&mut rng, n);
    let single = Engine::with_config(db.clone(), config());
    let queries: Vec<UncertainObject> = (0..3).map(|_| random_object(&mut rng)).collect();
    for shards in [1usize, 2, 4] {
        let sharded = ShardedEngine::with_config(db.clone(), config(), shards);
        for (qi, q) in queries.iter().enumerate() {
            compare_engines(&single, &sharded, q, &format!("shards={shards} q={qi}"));
        }
        if shards == 1 {
            // one shard must be the plain-engine code path: the
            // router's own refinement counters never move
            assert_eq!(
                sharded.refine_stats().rounds(),
                0,
                "one-shard engine refined at the router"
            );
            assert!(sharded.shards()[0].refine_stats().rounds() > 0);
        } else {
            // above one shard the plane refines at the router only
            for shard in sharded.shards() {
                assert_eq!(shard.refine_stats().rounds(), 0);
            }
        }
    }
}

/// Interleaved mutations: apply an identical mutation script to the
/// single engine and to sharded engines at 1/2/4 shards, comparing all
/// query types after every round. Removals target ids that exist in
/// both (globals == single-engine ids by construction).
fn check_with_mutations(seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = rng.gen_range(15..40);
    let db = random_db(&mut rng, n);
    let mut single = Engine::with_config(db.clone(), config());
    let mut engines: Vec<ShardedEngine> = [1usize, 2, 4]
        .iter()
        .map(|&s| ShardedEngine::with_config(db.clone(), config(), s))
        .collect();
    let mut live: Vec<ObjectId> = db.ids().collect();
    for round in 0..3 {
        for _ in 0..rng.gen_range(2..5) {
            match rng.gen_range(0..3) {
                0 => {
                    let obj = random_object(&mut rng);
                    let id = single.insert(obj.clone());
                    for sharded in &mut engines {
                        assert_eq!(
                            sharded.insert(obj.clone()),
                            id,
                            "global id diverged from single-engine id"
                        );
                    }
                    live.push(id);
                }
                1 if live.len() > 8 => {
                    let id = live.swap_remove(rng.gen_range(0..live.len()));
                    let removed = single.remove(id);
                    for sharded in &mut engines {
                        assert_eq!(sharded.remove(id).mbr(), removed.mbr());
                    }
                }
                _ => {
                    let id = live[rng.gen_range(0..live.len())];
                    let obj = random_object(&mut rng);
                    single.update(id, obj.clone());
                    for sharded in &mut engines {
                        sharded.update(id, obj.clone());
                    }
                }
            }
        }
        let q = random_object(&mut rng);
        for sharded in &engines {
            assert_eq!(single.db().len(), sharded.len(), "live set diverged");
            compare_engines(
                &single,
                sharded,
                &q,
                &format!("round={round} shards={}", sharded.num_shards()),
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn sharded_queries_bit_identical_to_single_engine(seed in 0u64..10_000) {
        check_read_only(seed);
    }

    #[test]
    fn sharded_queries_bit_identical_under_mutations(seed in 0u64..10_000) {
        check_with_mutations(seed);
    }
}

/// The shard-parallelism sweep: on a 4-shard engine, fanning the
/// per-shard work (candidate materialization, classify, veto probes)
/// over `shard_threads` worker-pool lanes must stay `f64::to_bits`
/// -identical to the single engine — the merge under the global
/// pruning bound never leaves the calling thread, so lane count is a
/// wall-clock knob, not a semantic one. Runs explicitly at 1/2/4 lanes
/// regardless of the `UDB_SHARD_THREADS` CI shim.
#[test]
fn shard_threads_are_bit_identical_at_every_lane_count() {
    let mut rng = StdRng::seed_from_u64(0x5AD_7EAD);
    let db = random_db(&mut rng, 48);
    let single = Engine::with_config(db.clone(), config());
    let queries: Vec<UncertainObject> = (0..4).map(|_| random_object(&mut rng)).collect();
    for shard_threads in [1usize, 2, 4] {
        let cfg = IdcaConfig {
            shard_threads,
            ..config()
        };
        let sharded = ShardedEngine::with_config(db.clone(), cfg, 4);
        for (qi, q) in queries.iter().enumerate() {
            compare_engines(
                &single,
                &sharded,
                q,
                &format!("shard_threads={shard_threads} q={qi}"),
            );
        }
    }
}

/// Deterministic dense case on the paper-shaped synthetic workload: a
/// mutating hot-spot stream served through 1/2/4-shard engines equals
/// the single-engine serve, sequential and batched.
#[test]
fn sharded_stream_serves_bit_identically() {
    let object_cfg = SyntheticConfig {
        n: 200,
        max_extent: 0.02,
        ..Default::default()
    };
    let db = object_cfg.generate();
    let stream = QueryStreamConfig {
        batches: 3,
        batch_size: 6,
        k: 3,
        insert_weight: 0.15,
        delete_weight: 0.1,
        hotspots: 1,
        hotspot_fraction: 0.8,
        ..Default::default()
    }
    .generate(&object_cfg);
    let cfg = IdcaConfig {
        max_iterations: 4,
        decomp_cache_entries: 1024,
        ..Default::default()
    };
    for mode in [ServeMode::Sequential, ServeMode::Batched] {
        let mut single = Engine::with_config(db.clone(), cfg.clone());
        let oracle = serve_stream(&mut single, &stream, mode);
        for shards in [1usize, 2, 4] {
            let mut sharded = ShardedEngine::with_config(db.clone(), cfg.clone(), shards);
            let got = serve_stream(&mut sharded, &stream, mode);
            assert_eq!(oracle, got, "mode={mode:?} shards={shards}");
            assert_eq!(single.db().len(), sharded.len());
        }
    }
}
