//! Equivalence oracle for the batched query engine: a mixed
//! [`QueryBatch`] must produce **bit-identical** results — membership,
//! probability bounds, iteration counts, result order — to running the
//! same queries one by one through the per-query [`Engine`] entry
//! points, at every [`IdcaConfig::batch_threads`] lane count. The
//! batched pass shares *work* across queries (one grouped R-tree
//! descent, a cross-query decomposition cache, recycled refiner
//! arenas) but never numeric state, so 1, 2 and 4 lanes must agree with
//! the sequential entry points to the last bit, for all three query
//! types at once — with the owned engine's persistent cross-batch
//! cache on (the serving default) and off.
//!
//! The engine under test honors the `UDB_SHARDS` matrix axis (see
//! `tests/common`): the same oracle must hold when queries route
//! through a 1-, 2- or 4-shard [`ShardedEngine`].

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use uncertain_db::prelude::*;

mod common;
use common::TestEngine;

/// A random uncertain object: mixed density families, occasional
/// existential uncertainty (mirrors the early-exit equivalence oracle).
fn random_object(rng: &mut StdRng) -> UncertainObject {
    let cx: f64 = rng.gen_range(0.0..4.0);
    let cy: f64 = rng.gen_range(0.0..4.0);
    let hx: f64 = rng.gen_range(0.02..0.5);
    let hy: f64 = rng.gen_range(0.02..0.5);
    let center = Point::from([cx, cy]);
    let support = Rect::centered(&center, &[hx, hy]);
    let pdf: Pdf = match rng.gen_range(0..3) {
        0 => Pdf::uniform(support),
        1 => GaussianPdf::new(center, vec![hx / 2.0, hy / 2.0], support).into(),
        _ => {
            let n = rng.gen_range(2..5);
            let pts: Vec<Point> = (0..n)
                .map(|_| {
                    Point::from([
                        rng.gen_range(cx - hx..cx + hx),
                        rng.gen_range(cy - hy..cy + hy),
                    ])
                })
                .collect();
            DiscretePdf::equally_weighted(pts).into()
        }
    };
    if rng.gen_range(0..4) == 0 {
        UncertainObject::with_existence(pdf, rng.gen_range(0.3..1.0))
    } else {
        UncertainObject::new(pdf)
    }
}

fn random_db(rng: &mut StdRng, n: usize) -> Database {
    Database::from_objects((0..n).map(|_| random_object(rng)).collect())
}

/// Bit-exact comparison of two result sets (no tolerances anywhere).
fn assert_bit_identical(seq: &[ThresholdResult], bat: &[ThresholdResult], ctx: &str) {
    assert_eq!(bat.len(), seq.len(), "{ctx}: result count diverged");
    for (a, b) in bat.iter().zip(seq.iter()) {
        assert_eq!(a.id, b.id, "{ctx}: membership/order diverged");
        assert_eq!(
            a.prob_lower.to_bits(),
            b.prob_lower.to_bits(),
            "{ctx}: lower bound diverged for {:?}",
            a.id
        );
        assert_eq!(
            a.prob_upper.to_bits(),
            b.prob_upper.to_bits(),
            "{ctx}: upper bound diverged for {:?}",
            a.id
        );
        assert_eq!(
            a.iterations, b.iterations,
            "{ctx}: iteration count diverged for {:?}",
            a.id
        );
    }
}

fn config_with_lanes(lanes: usize) -> IdcaConfig {
    IdcaConfig {
        max_iterations: 4,
        uncertainty_target: 0.0,
        batch_threads: lanes,
        ..Default::default()
    }
}

/// The full oracle for one randomized workload: build a mixed batch of
/// kNN / RkNN / top-`m` queries over shared and distinct query objects,
/// run it at 1/2/4 batch lanes — with the cross-batch cache on and off
/// — and demand bit-identity with the per-query entry points.
fn check_mixed_batch(seed: u64, n: usize, queries: usize) {
    let mut rng = StdRng::seed_from_u64(seed);
    let db = random_db(&mut rng, n);
    // several queries deliberately share (or nearly share) a region so
    // candidate sets overlap and the decomposition cache is actually hit
    let hot = random_object(&mut rng);
    let query_objects: Vec<UncertainObject> = (0..queries)
        .map(|i| {
            if i % 2 == 0 {
                hot.clone()
            } else {
                random_object(&mut rng)
            }
        })
        .collect();
    let (k, tau, m) = (rng.gen_range(1..4), rng.gen_range(0.05..0.8), 2);

    // the sequential oracle, through the per-query entry points
    let oracle_engine = Engine::with_config(db.clone(), config_with_lanes(1));
    let mut oracle: Vec<Vec<ThresholdResult>> = Vec::new();
    for (i, q) in query_objects.iter().enumerate() {
        oracle.push(match i % 3 {
            0 => oracle_engine.knn_threshold(q, k, tau),
            1 => oracle_engine.rknn_threshold(q, k, tau),
            _ => oracle_engine.top_probable_nn(q, m),
        });
    }

    let mut batch = QueryBatch::new();
    for (i, q) in query_objects.iter().enumerate() {
        match i % 3 {
            0 => batch.knn_threshold(q.clone(), k, tau),
            1 => batch.rknn_threshold(q.clone(), k, tau),
            _ => batch.top_probable_nn(q.clone(), m),
        };
    }
    for lanes in [1usize, 2, 4] {
        for cache_cap in [0usize, 1024] {
            // the engine under test rides the UDB_SHARDS matrix axis
            let engine = TestEngine::with_config(
                db.clone(),
                IdcaConfig {
                    decomp_cache_entries: cache_cap,
                    ..config_with_lanes(lanes)
                },
            );
            let results = engine.run_batch(&batch);
            assert_eq!(results.len(), oracle.len());
            for (qi, (seq, bat)) in oracle.iter().zip(results.iter()).enumerate() {
                assert_bit_identical(
                    seq,
                    bat,
                    &format!("lanes={lanes} cache={cache_cap} query={qi}"),
                );
            }
            // a warm repeat of the same batch must replay identically
            let again = engine.run_batch(&batch);
            for (qi, (seq, bat)) in oracle.iter().zip(again.iter()).enumerate() {
                assert_bit_identical(
                    seq,
                    bat,
                    &format!("warm repeat lanes={lanes} cache={cache_cap} query={qi}"),
                );
            }
            engine.assert_routing();
        }
    }
}

/// Grouped candidate generation must return exactly the per-query
/// candidate sets (the grouped descent prunes with the same
/// MinDist/MaxDist rule, just against many queries at once).
fn check_grouped_candidates(seed: u64, n: usize, queries: usize) {
    let mut rng = StdRng::seed_from_u64(seed);
    let db = random_db(&mut rng, n);
    let engine = TestEngine::new(db);
    let requests: Vec<(Rect, usize)> = (0..queries)
        .map(|_| {
            let q = random_object(&mut rng);
            (q.mbr().clone(), rng.gen_range(1..5))
        })
        .collect();
    let grouped = engine.knn_candidates_batch(&requests);
    assert_eq!(grouped.len(), requests.len());
    for ((q, k), batch_set) in requests.iter().zip(grouped.iter()) {
        let mut single = engine.knn_candidates(q, *k);
        single.sort_unstable();
        assert_eq!(
            &single, batch_set,
            "candidate set diverged for k={k} (grouped descent vs per-query stream)"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn batched_queries_bit_identical_at_1_2_4_lanes(seed in 0u64..10_000) {
        check_mixed_batch(seed, 60, 6);
    }

    #[test]
    fn grouped_candidates_match_per_query_candidates(seed in 0u64..10_000) {
        check_grouped_candidates(seed, 120, 8);
    }
}

/// A deterministic larger case on the paper-shaped synthetic workload
/// (denser candidate sets than the randomized mixed-family databases).
#[test]
fn batched_synthetic_workload_matches_sequential() {
    let object_cfg = SyntheticConfig {
        n: 300,
        max_extent: 0.02,
        ..Default::default()
    };
    let db = object_cfg.generate();
    let stream = QueryStreamConfig {
        batches: 2,
        batch_size: 5,
        k: 3,
        hotspots: 1,
        hotspot_fraction: 0.8,
        ..Default::default()
    }
    .generate(&object_cfg);
    for lanes in [1usize, 2, 4] {
        let mut seq_engine = TestEngine::with_config(db.clone(), config_with_lanes(lanes));
        let mut bat_engine = TestEngine::with_config(db.clone(), config_with_lanes(lanes));
        let seq = serve_stream(&mut seq_engine, &stream, ServeMode::Sequential);
        let bat = serve_stream(&mut bat_engine, &stream, ServeMode::Batched);
        assert_eq!(seq, bat, "lanes={lanes}");
        seq_engine.assert_routing();
    }
}
