//! Equivalence oracle for index-integrated early-exit refinement: on
//! randomized workloads, the owned [`Engine`] paths (index-driven
//! candidates, subtree filters, lock-step mid-loop retirement) must
//! classify every object exactly like the scan-based full-refinement
//! [`QueryEngine`] paths — identical hit/drop/undecided sets *and*
//! identical probability bounds — for both `knn_threshold` and
//! `rknn_threshold`. The indexed engine under test honors the
//! `UDB_SHARDS` matrix axis (see `tests/common`).

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use uncertain_db::prelude::*;

mod common;
use common::TestEngine;

/// A random uncertain object: mixed density families, occasional
/// existential uncertainty (the filter treats those differently).
fn random_object(rng: &mut StdRng) -> UncertainObject {
    let cx: f64 = rng.gen_range(0.0..4.0);
    let cy: f64 = rng.gen_range(0.0..4.0);
    let hx: f64 = rng.gen_range(0.02..0.5);
    let hy: f64 = rng.gen_range(0.02..0.5);
    let center = Point::from([cx, cy]);
    let support = Rect::centered(&center, &[hx, hy]);
    let pdf: Pdf = match rng.gen_range(0..3) {
        0 => Pdf::uniform(support),
        1 => GaussianPdf::new(center, vec![hx / 2.0, hy / 2.0], support).into(),
        _ => {
            let n = rng.gen_range(2..5);
            let pts: Vec<Point> = (0..n)
                .map(|_| {
                    Point::from([
                        rng.gen_range(cx - hx..cx + hx),
                        rng.gen_range(cy - hy..cy + hy),
                    ])
                })
                .collect();
            DiscretePdf::equally_weighted(pts).into()
        }
    };
    if rng.gen_range(0..4) == 0 {
        UncertainObject::with_existence(pdf, rng.gen_range(0.3..1.0))
    } else {
        UncertainObject::new(pdf)
    }
}

fn random_db(rng: &mut StdRng, n: usize) -> Database {
    Database::from_objects((0..n).map(|_| random_object(rng)).collect())
}

/// Splits threshold results into (hit, drop, undecided) id sets.
fn classify(
    results: &[ThresholdResult],
    tau: f64,
) -> (Vec<ObjectId>, Vec<ObjectId>, Vec<ObjectId>) {
    let mut hit = Vec::new();
    let mut drop = Vec::new();
    let mut undecided = Vec::new();
    for r in results {
        if r.is_hit(tau) {
            hit.push(r.id);
        } else if r.is_drop(tau) {
            drop.push(r.id);
        } else {
            undecided.push(r.id);
        }
    }
    hit.sort_unstable();
    drop.sort_unstable();
    undecided.sort_unstable();
    (hit, drop, undecided)
}

fn assert_equivalent(mut scan: Vec<ThresholdResult>, indexed: Vec<ThresholdResult>, tau: f64) {
    scan.sort_by_key(|r| r.id);
    // identical result sets with identical bounds...
    assert_eq!(indexed.len(), scan.len(), "result-set size diverged");
    for (a, b) in indexed.iter().zip(scan.iter()) {
        assert_eq!(a.id, b.id, "result-set membership diverged");
        assert_eq!(
            a.prob_lower, b.prob_lower,
            "lower bound diverged for {:?}",
            a.id
        );
        assert_eq!(
            a.prob_upper, b.prob_upper,
            "upper bound diverged for {:?}",
            a.id
        );
        assert_eq!(
            a.iterations, b.iterations,
            "iteration count diverged for {:?}",
            a.id
        );
    }
    // ...and therefore identical hit/drop/undecided classification
    assert_eq!(classify(&indexed, tau), classify(&scan, tau));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn indexed_knn_threshold_equals_full_refinement(
        seed in 0u64..10_000,
        k in 1usize..5,
        tau_pct in 0usize..10,
    ) {
        let tau = tau_pct as f64 / 10.0;
        let mut rng = StdRng::seed_from_u64(0xE0 + seed);
        let n = rng.gen_range(8..20);
        let db = random_db(&mut rng, n);
        let q = random_object(&mut rng);
        let cfg = IdcaConfig {
            max_iterations: 4,
            uncertainty_target: 0.0,
            ..Default::default()
        };
        let scan = QueryEngine::with_config(&db, cfg.clone());
        let indexed = TestEngine::with_config(db.clone(), cfg);
        assert_equivalent(
            scan.knn_threshold(&q, k, tau),
            indexed.knn_threshold(&q, k, tau),
            tau,
        );
        indexed.assert_routing();
    }

    #[test]
    fn indexed_rknn_threshold_equals_full_refinement(
        seed in 0u64..10_000,
        k in 1usize..4,
        tau_pct in 0usize..10,
    ) {
        let tau = tau_pct as f64 / 10.0;
        let mut rng = StdRng::seed_from_u64(0xF0 + seed);
        let n = rng.gen_range(6..14);
        let db = random_db(&mut rng, n);
        let q = random_object(&mut rng);
        let cfg = IdcaConfig {
            max_iterations: 4,
            uncertainty_target: 0.0,
            ..Default::default()
        };
        let scan = QueryEngine::with_config(&db, cfg.clone());
        let indexed = TestEngine::with_config(db.clone(), cfg);
        assert_equivalent(
            scan.rknn_threshold(&q, k, tau),
            indexed.rknn_threshold(&q, k, tau),
            tau,
        );
        indexed.assert_routing();
    }
}
